#include "obs/critpath.hpp"

#include <algorithm>
#include <cmath>

namespace cicero::obs {

namespace {

constexpr double kNsPerMs = 1e6;

double ms(std::int64_t ns) { return static_cast<double>(ns) / kNsPerMs; }

/// Nearest-rank percentile over an ascending-sorted sample vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  auto rank = static_cast<std::size_t>(std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

/// Earliest-observation merge for one milestone (-1 = unobserved).
std::int64_t merge_ts(std::int64_t a, std::int64_t b) {
  if (a < 0) return b;
  if (b < 0) return a;
  return std::min(a, b);
}

}  // namespace

const char* crit_phase_name(CritPhase p) {
  switch (p) {
    case CritPhase::kOrder: return "order";
    case CritPhase::kDependencyWait: return "dependency_wait";
    case CritPhase::kSign: return "sign";
    case CritPhase::kPropagate: return "propagate";
    case CritPhase::kPeerSignal: return "peer_signal";
    case CritPhase::kApply: return "apply";
    case CritPhase::kRetransmit: return "retransmit";
  }
  return "unknown";
}

void CritPath::event_submitted(std::uint32_t origin, std::uint64_t seq, std::int64_t ts_ns) {
  if (!enabled_) return;
  event_submits_.emplace(std::make_pair(origin, seq), ts_ns);  // first wins
}

void CritPath::update_scheduled(std::uint64_t id, std::uint32_t origin, std::uint64_t seq,
                                std::int64_t ts_ns) {
  if (!enabled_) return;
  Record& r = updates_[id];
  if (r.scheduled < 0) r.scheduled = ts_ns;
  if (r.submit < 0) {
    // Several updates can share one cause event, so the submit timestamp
    // stays in the side table rather than being consumed destructively.
    auto it = event_submits_.find(std::make_pair(origin, seq));
    if (it != event_submits_.end()) r.submit = it->second;
  }
}

void CritPath::update_released(std::uint64_t id, std::int64_t ts_ns) {
  if (!enabled_) return;
  Record& r = updates_[id];
  if (r.released < 0) r.released = ts_ns;
}

void CritPath::update_signed(std::uint64_t id, std::int64_t ts_ns) {
  if (!enabled_) return;
  Record& r = updates_[id];
  if (r.signed_at < 0) r.signed_at = ts_ns;
}

void CritPath::update_retransmitted(std::uint64_t id, std::int64_t ts_ns) {
  if (!enabled_) return;
  Record& r = updates_[id];
  r.last_retransmit = std::max(r.last_retransmit, ts_ns);
  ++r.retransmits;
}

void CritPath::update_rx(std::uint64_t id, std::int64_t ts_ns) {
  if (!enabled_) return;
  Record& r = updates_[id];
  if (r.rx < 0) r.rx = ts_ns;
}

void CritPath::update_peer_ready(std::uint64_t id, std::int64_t ts_ns) {
  if (!enabled_) return;
  Record& r = updates_[id];
  if (r.peer_ready < 0) r.peer_ready = ts_ns;
}

void CritPath::update_applied(std::uint64_t id, std::int64_t ts_ns) {
  if (!enabled_) return;
  Record& r = updates_[id];
  if (r.applied < 0) r.applied = ts_ns;
}

void CritPath::update_acked(std::uint64_t id, std::int64_t ts_ns) {
  if (!enabled_) return;
  Record& r = updates_[id];
  if (r.acked < 0) r.acked = ts_ns;
}

void CritPath::add_phase_bytes(CritPhase p, std::uint64_t bytes) {
  if (!enabled_) return;
  bytes_[static_cast<std::size_t>(p)] += bytes;
}

const CritPath::Record* CritPath::find(std::uint64_t id) const {
  auto it = updates_.find(id);
  return it != updates_.end() ? &it->second : nullptr;
}

CritPath::PathBreakdown CritPath::attribute(const Record& r) {
  PathBreakdown out;
  out.complete = r.submit >= 0 && r.acked >= 0;
  if (!out.complete) return out;

  // Clamp the milestone chain to causal order: a missing interior
  // milestone collapses onto its predecessor (zero-width phase) and a
  // same-instant inversion cannot yield a negative phase.  The clamp
  // never moves the endpoints, so the phases partition [submit, acked].
  const std::int64_t raw[8] = {r.submit, r.scheduled,  r.released, r.signed_at,
                               r.rx,     r.peer_ready, r.applied,  r.acked};
  std::int64_t m[8];
  m[0] = raw[0];
  for (std::size_t i = 1; i < 8; ++i) {
    m[i] = raw[i] >= 0 ? std::max(m[i - 1], raw[i]) : m[i - 1];
  }

  const std::int64_t leg1 = m[4] - m[3];  // controller -> switch in flight
  const std::int64_t leg2 = m[7] - m[6];  // apply -> ack accepted
  std::int64_t retrans = 0;
  if (r.retransmits > 0 && r.last_retransmit >= 0) {
    // Within each in-flight leg, the stretch up to the last resend was a
    // retransmission stall; the remainder is genuine propagation.
    retrans += std::clamp<std::int64_t>(std::min(r.last_retransmit, m[4]) - m[3], 0, leg1);
    retrans += std::clamp<std::int64_t>(std::min(r.last_retransmit, m[7]) - m[6], 0, leg2);
  }

  auto& p = out.phase_ms;
  p[static_cast<std::size_t>(CritPhase::kOrder)] = ms(m[1] - m[0]);
  p[static_cast<std::size_t>(CritPhase::kDependencyWait)] = ms(m[2] - m[1]);
  p[static_cast<std::size_t>(CritPhase::kSign)] = ms(m[3] - m[2]);
  p[static_cast<std::size_t>(CritPhase::kPropagate)] = ms(leg1 + leg2 - retrans);
  p[static_cast<std::size_t>(CritPhase::kPeerSignal)] = ms(m[5] - m[4]);
  p[static_cast<std::size_t>(CritPhase::kApply)] = ms(m[6] - m[5]);
  p[static_cast<std::size_t>(CritPhase::kRetransmit)] = ms(retrans);

  out.total_ms = ms(m[7] - m[0]);
  double sum = 0.0;
  for (double v : p) sum += v;
  out.attributed = out.total_ms > 0.0 ? sum / out.total_ms : 1.0;
  return out;
}

CritPath::Summary CritPath::summarize(std::size_t top_k) const {
  Summary s;
  for (std::size_t i = 0; i < kCritPhaseCount; ++i) s.phases[i].bytes = bytes_[i];

  std::vector<double> samples[kCritPhaseCount];
  std::vector<double> totals;
  double attributed_sum = 0.0;
  s.attributed_min = 1.0;

  // std::map iteration order (ascending update id) keeps every float
  // accumulation and the slowest-list tie-break placement-independent.
  for (const auto& [id, rec] : updates_) {
    const PathBreakdown b = attribute(rec);
    if (!b.complete) {
      ++s.incomplete;
      continue;
    }
    ++s.completed;
    totals.push_back(b.total_ms);
    s.end_to_end_total_ms += b.total_ms;
    attributed_sum += b.attributed;
    s.attributed_min = std::min(s.attributed_min, b.attributed);
    for (std::size_t i = 0; i < kCritPhaseCount; ++i) {
      s.phases[i].total_ms += b.phase_ms[i];
      samples[i].push_back(b.phase_ms[i]);
    }
    SlowUpdate slow;
    slow.id = id;
    slow.total_ms = b.total_ms;
    for (std::size_t i = 0; i < kCritPhaseCount; ++i) slow.phase_ms[i] = b.phase_ms[i];
    s.slowest.push_back(slow);
  }

  if (s.completed == 0) {
    s.attributed_min = 0.0;
    s.slowest.clear();
    return s;
  }
  s.attributed_mean = attributed_sum / static_cast<double>(s.completed);

  std::sort(totals.begin(), totals.end());
  s.end_to_end_p50_ms = percentile(totals, 0.50);
  s.end_to_end_p99_ms = percentile(totals, 0.99);
  for (std::size_t i = 0; i < kCritPhaseCount; ++i) {
    std::sort(samples[i].begin(), samples[i].end());
    s.phases[i].p50_ms = percentile(samples[i], 0.50);
    s.phases[i].p99_ms = percentile(samples[i], 0.99);
  }

  std::sort(s.slowest.begin(), s.slowest.end(), [](const SlowUpdate& a, const SlowUpdate& b) {
    if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
    return a.id < b.id;
  });
  if (s.slowest.size() > top_k) s.slowest.resize(top_k);
  return s;
}

void CritPath::clear() {
  updates_.clear();
  event_submits_.clear();
  for (auto& b : bytes_) b = 0;
}

void CritPath::merge_from(const CritPath& other) {
  for (const auto& [key, ts] : other.event_submits_) {
    auto [it, inserted] = event_submits_.emplace(key, ts);
    if (!inserted) it->second = std::min(it->second, ts);
  }
  for (const auto& [id, src] : other.updates_) {
    auto [it, inserted] = updates_.emplace(id, src);
    if (inserted) continue;
    Record& dst = it->second;
    dst.submit = merge_ts(dst.submit, src.submit);
    dst.scheduled = merge_ts(dst.scheduled, src.scheduled);
    dst.released = merge_ts(dst.released, src.released);
    dst.signed_at = merge_ts(dst.signed_at, src.signed_at);
    dst.rx = merge_ts(dst.rx, src.rx);
    dst.peer_ready = merge_ts(dst.peer_ready, src.peer_ready);
    dst.applied = merge_ts(dst.applied, src.applied);
    dst.acked = merge_ts(dst.acked, src.acked);
    dst.last_retransmit = std::max(dst.last_retransmit, src.last_retransmit);
    dst.retransmits += src.retransmits;
  }
  for (std::size_t i = 0; i < kCritPhaseCount; ++i) bytes_[i] += other.bytes_[i];
}

}  // namespace cicero::obs
