#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>

namespace cicero::obs {

namespace {

// Minimal JSON string escaping (names come from code, but node names may
// carry arbitrary topology labels).
void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_args(std::ostream& out, const TraceArgs& args) {
  out << "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << args[i].first << "\":" << args[i].second;
  }
  out << '}';
}

// Chrome trace timestamps are microseconds; keep sub-us precision.
double to_trace_us(std::int64_t ns) { return static_cast<double>(ns) / 1e3; }

}  // namespace

void Tracer::push(Event e) {
  if (event_cap_ != 0 && events_.size() >= event_cap_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(e));
}

void Tracer::set_process_name(TracePid pid, std::string name) {
  if (!enabled_) return;
  Event e;
  e.phase = 'M';
  e.pid = pid;
  e.name = "process_name";
  e.id = std::move(name);
  push(std::move(e));
}

void Tracer::set_thread_name(TracePid pid, TraceTid tid, std::string name) {
  if (!enabled_) return;
  Event e;
  e.phase = 'M';
  e.pid = pid;
  e.tid = tid;
  e.name = "thread_name";
  e.id = std::move(name);
  push(std::move(e));
}

void Tracer::complete(TracePid pid, TraceTid tid, const char* name, std::int64_t start_ns,
                      std::int64_t dur_ns, TraceArgs args) {
  if (!enabled_) return;
  Event e;
  e.phase = 'X';
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  e.name = name;
  e.args = std::move(args);
  push(std::move(e));
}

void Tracer::instant(TracePid pid, TraceTid tid, const char* name, TraceArgs args) {
  if (!enabled_) return;
  Event e;
  e.phase = 'i';
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = now();
  e.name = name;
  e.args = std::move(args);
  push(std::move(e));
}

void Tracer::async_begin(const char* cat, const std::string& id, const char* name,
                         TracePid pid, TraceTid tid, TraceArgs args, std::int64_t ts_ns) {
  if (!enabled_) return;
  Event e;
  e.phase = 'b';
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = ts_ns >= 0 ? ts_ns : now();
  e.name = name;
  e.cat = cat;
  e.id = id;
  e.args = std::move(args);
  push(std::move(e));
}

void Tracer::async_end(const char* cat, const std::string& id, const char* name, TracePid pid,
                       TraceTid tid, std::int64_t ts_ns) {
  if (!enabled_) return;
  Event e;
  e.phase = 'e';
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = ts_ns >= 0 ? ts_ns : now();
  e.name = name;
  e.cat = cat;
  e.id = id;
  push(std::move(e));
}

void Tracer::flow(char phase, const char* cat, const std::string& id, const char* name,
                  TracePid pid, TraceTid tid, std::int64_t ts_ns) {
  if (!enabled_) return;
  Event e;
  e.phase = phase;
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = ts_ns >= 0 ? ts_ns : now();
  e.name = name;
  e.cat = cat;
  e.id = id;
  push(std::move(e));
}

void Tracer::flow_start(const char* cat, const std::string& id, const char* name, TracePid pid,
                        TraceTid tid, std::int64_t ts_ns) {
  flow('s', cat, id, name, pid, tid, ts_ns);
}

void Tracer::flow_step(const char* cat, const std::string& id, const char* name, TracePid pid,
                       TraceTid tid, std::int64_t ts_ns) {
  flow('t', cat, id, name, pid, tid, ts_ns);
}

void Tracer::flow_end(const char* cat, const std::string& id, const char* name, TracePid pid,
                      TraceTid tid, std::int64_t ts_ns) {
  flow('f', cat, id, name, pid, tid, ts_ns);
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const Event& e : events_) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"ph\":\"" << e.phase << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
    switch (e.phase) {
      case 'M':
        out << ",\"name\":";
        write_escaped(out, e.name);
        out << ",\"args\":{\"name\":";
        write_escaped(out, e.id);
        out << '}';
        break;
      case 'X':
        std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f", to_trace_us(e.ts_ns),
                      to_trace_us(e.dur_ns));
        out << buf << ",\"name\":";
        write_escaped(out, e.name);
        out << ',';
        write_args(out, e.args);
        break;
      case 'i':
        std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", to_trace_us(e.ts_ns));
        out << buf << ",\"s\":\"t\",\"name\":";
        write_escaped(out, e.name);
        out << ',';
        write_args(out, e.args);
        break;
      case 'b':
      case 'e':
        std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", to_trace_us(e.ts_ns));
        out << buf << ",\"cat\":\"" << (e.cat != nullptr ? e.cat : "") << "\",\"id\":";
        write_escaped(out, e.id);
        out << ",\"name\":";
        write_escaped(out, e.name);
        out << ',';
        write_args(out, e.args);
        break;
      case 's':
      case 't':
      case 'f':
        std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", to_trace_us(e.ts_ns));
        out << buf << ",\"cat\":\"" << (e.cat != nullptr ? e.cat : "") << "\",\"id\":";
        write_escaped(out, e.id);
        out << ",\"name\":";
        write_escaped(out, e.name);
        // Binding point "e" attaches the arrowhead to the end of the
        // enclosing slice, which is where the receive actually happened.
        if (e.phase == 'f') out << ",\"bp\":\"e\"";
        break;
      default:
        break;
    }
    out << '}';
  }
  out << "]}\n";
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  write_chrome_trace(f);
  return static_cast<bool>(f);
}

}  // namespace cicero::obs
