// Causal critical-path profiler for the update lifecycle.
//
// Each update's journey — intent submitted, PBFT-ordered, scheduled,
// released by the dependency tracker, threshold-signed, propagated to
// its switch, applied, acked — is recorded as a sequence of sim-time
// milestones keyed by the update id (the correlation id that already
// threads through UpdateMsg/AckMsg).  At run end `summarize()` replays
// every completed record and attributes its end-to-end latency to seven
// named phases:
//
//   order            submit -> schedule (event verify + BFT ordering +
//                    route computation)
//   dependency_wait  schedule -> release (blocked on predecessor acks)
//   sign             release -> signed update leaving the controller
//   propagate        in-flight legs (controller->switch, switch->ack)
//                    minus retransmit stalls
//   peer_signal      first switch rx -> last upstream SegmentDone signal
//                    accepted (decentralized execution's in-band wait;
//                    zero width in controller-driven mode)
//   apply            peer-ready switch -> rule committed (includes quorum
//                    wait + signature verification at the switch)
//   retransmit       the portion of an in-flight leg spent waiting out
//                    loss, i.e. up to the last retransmission of the leg
//
// Milestones are clamped to causal order before differencing, so the
// phases partition the end-to-end interval exactly: attribution is 100 %
// by construction for every record that has both endpoints (the report
// still carries the measured fraction so the invariant is checkable).
//
// Control-plane byte counts accumulate per phase at the send sites (PBFT
// wire bytes -> order, partial/update sends -> sign/propagate, resends
// -> retransmit), giving the bytes-by-phase view the report emits.
//
// Determinism: records live in std::map (ordered iteration), milestones
// are integer sim-ns, and every summary collection is collect-then-sort
// — the output is bit-identical across seeds, hash salts and thread
// counts for identical simulated histories.  Parallel runs keep one
// CritPath per shard (an update's whole lifecycle stays inside its
// domain's shard), folded with `merge_from` after the run.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace cicero::obs {

enum class CritPhase : std::uint8_t {
  kOrder = 0,
  kDependencyWait,
  kSign,
  kPropagate,
  kPeerSignal,
  kApply,
  kRetransmit,
};
inline constexpr std::size_t kCritPhaseCount = 7;

/// Stable snake_case phase name used in reports and traces.
const char* crit_phase_name(CritPhase p);

class CritPath {
 public:
  /// Raw milestone record for one update; -1 = never observed.  All
  /// timestamps are simulated nanoseconds.
  struct Record {
    std::int64_t submit = -1;     ///< intent entered the control plane
    std::int64_t scheduled = -1;  ///< ordered + route computed, handed to tracker
    std::int64_t released = -1;   ///< dependency tracker released it
    std::int64_t signed_at = -1;  ///< signed update left the controller
    std::int64_t rx = -1;         ///< first receipt at the target switch
    std::int64_t peer_ready = -1; ///< last upstream SegmentDone accepted
    std::int64_t applied = -1;    ///< rule committed to the flow table
    std::int64_t acked = -1;      ///< ack accepted back at the controller
    std::int64_t last_retransmit = -1;
    std::uint32_t retransmits = 0;
  };

  /// One update's latency split across the phases (milliseconds).
  struct PathBreakdown {
    double phase_ms[kCritPhaseCount] = {};
    double total_ms = 0.0;       ///< acked - submit
    double attributed = 0.0;     ///< sum(phase_ms) / total_ms (1.0 when total > 0)
    bool complete = false;       ///< submit and acked both observed
  };

  struct PhaseSummary {
    double total_ms = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
    std::uint64_t bytes = 0;
  };

  struct SlowUpdate {
    std::uint64_t id = 0;
    double total_ms = 0.0;
    double phase_ms[kCritPhaseCount] = {};
  };

  struct Summary {
    std::uint64_t completed = 0;   ///< records with submit and acked
    std::uint64_t incomplete = 0;  ///< records missing an endpoint (never acked)
    double end_to_end_total_ms = 0.0;
    double end_to_end_p50_ms = 0.0;
    double end_to_end_p99_ms = 0.0;
    double attributed_min = 0.0;   ///< min over completed updates
    double attributed_mean = 0.0;
    PhaseSummary phases[kCritPhaseCount];
    std::vector<SlowUpdate> slowest;  ///< total_ms desc, id asc tie-break
  };

  explicit CritPath(bool enabled = false) { set_enabled(enabled); }

  CritPath(const CritPath&) = delete;
  CritPath& operator=(const CritPath&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) {
#ifndef CICERO_OBS_NOOP
    enabled_ = on;
#else
    (void)on;
#endif
  }

  // --- recording (cheap early-outs while disabled) ---
  /// Intent submission, keyed by the cause event until the schedule step
  /// maps it onto concrete update ids.
  void event_submitted(std::uint32_t origin, std::uint64_t seq, std::int64_t ts_ns);
  /// Update created from event (origin, seq); consumes the stored submit
  /// time into the update's record.
  void update_scheduled(std::uint64_t id, std::uint32_t origin, std::uint64_t seq,
                        std::int64_t ts_ns);
  void update_released(std::uint64_t id, std::int64_t ts_ns);
  void update_signed(std::uint64_t id, std::int64_t ts_ns);
  void update_retransmitted(std::uint64_t id, std::int64_t ts_ns);
  void update_rx(std::uint64_t id, std::int64_t ts_ns);
  /// Decentralized execution: the last unmet upstream SegmentDone signal
  /// was accepted, unblocking the local apply.
  void update_peer_ready(std::uint64_t id, std::int64_t ts_ns);
  void update_applied(std::uint64_t id, std::int64_t ts_ns);
  void update_acked(std::uint64_t id, std::int64_t ts_ns);
  void add_phase_bytes(CritPhase p, std::uint64_t bytes);

  // --- read side ---
  std::size_t tracked_updates() const { return updates_.size(); }
  const Record* find(std::uint64_t id) const;
  std::uint64_t phase_bytes(CritPhase p) const {
    return bytes_[static_cast<std::size_t>(p)];
  }

  /// Attribution for one record (exposed for tests; summarize() uses it).
  static PathBreakdown attribute(const Record& r);

  /// Deterministic run-end rollup: per-phase totals and percentiles,
  /// bytes-by-phase, and the top-k slowest completed updates.
  Summary summarize(std::size_t top_k = 5) const;

  void clear();
  /// Folds another profiler's records in (per-shard fold after a
  /// parallel run).  Shards own disjoint updates, but a collision merges
  /// field-wise (earliest milestone wins) rather than corrupting.
  void merge_from(const CritPath& other);

 private:
  bool enabled_ = false;
  std::map<std::uint64_t, Record> updates_;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::int64_t> event_submits_;
  std::uint64_t bytes_[kCritPhaseCount] = {};
};

}  // namespace cicero::obs
