// Byzantine demo — what a compromised controller can (and cannot) do.
//
// Stages the paper's §2.2 attacks against a live deployment twice: once
// against the crash-tolerant baseline (attacks land) and once against
// Cicero (attacks bounce off the threshold quorum), with a running
// commentary of what the switches saw.
#include <cstdio>

#include "core/deployment.hpp"

using namespace cicero;

namespace {

std::unique_ptr<core::Deployment> deploy(core::FrameworkKind fw) {
  net::FabricParams fabric;
  fabric.racks_per_pod = 3;
  fabric.hosts_per_rack = 2;
  core::DeploymentParams params;
  params.framework = fw;
  params.controllers_per_domain = 4;
  params.real_crypto = true;  // the signatures below are real
  params.seed = 99;
  return std::make_unique<core::Deployment>(net::build_pod(fabric), params);
}

void attack(core::FrameworkKind fw) {
  std::printf("\n=== target: %s ===\n", core::framework_name(fw));
  auto dep = deploy(fw);
  const auto hosts = dep->topology().hosts();
  const auto victim = dep->topology().switches().front();

  // Attack 1: unsolicited rule injection (the PACKET_OUT-style attack) —
  // one compromised controller pushes a rule no one agreed on.
  sched::Update rogue;
  rogue.id = 0xDEAD;
  rogue.switch_node = victim;
  rogue.op = sched::UpdateOp::kInstall;
  rogue.rule = {{hosts[0], hosts[1]}, victim, 1e6};
  const auto attacker = dep->controller_ids().back();
  dep->simulator().at(sim::milliseconds(1), [&dep, attacker, victim, rogue] {
    dep->controller(attacker).inject_rogue_update(victim, rogue);
  });
  dep->run(sim::seconds(2));
  const bool landed = dep->switch_at(victim).table().has({hosts[0], hosts[1]});
  std::printf("  [attack 1] rogue rule injection by controller %u: %s\n", attacker,
              landed ? "RULE INSTALLED — data plane compromised"
                     : "rejected (no threshold quorum behind it)");

  // Attack 2: rule mutation — the compromised controller participates in
  // the protocol but corrupts every update before signing it.
  dep->set_controller_fault(dep->controller_ids()[1], core::ControllerFault::kMutateUpdates);
  std::uint64_t corrupted = 0;
  for (const auto sw : dep->topology().switches()) {
    dep->switch_at(sw).add_applied_observer(
        [&dep, sw, &corrupted](const sched::Update& u) {
          if (u.op != sched::UpdateOp::kInstall) return;
          const auto path =
              dep->topology().shortest_path(u.rule.match.src_host, u.rule.match.dst_host);
          bool legit = false;
          for (std::size_t i = 1; i + 1 < path.size(); ++i) {
            if (path[i] == sw && u.rule.next_hop == path[i + 1]) legit = true;
          }
          corrupted += !legit;
        });
  }
  workload::WorkloadParams wl;
  wl.flow_count = 40;
  wl.arrival_rate_per_sec = 100;
  wl.seed = 5;
  const auto flows = workload::WorkloadGenerator(dep->topology(), wl).generate();
  dep->inject(flows);
  dep->run(sim::seconds(20));
  std::size_t done = 0;
  for (const auto& r : dep->flow_records()) done += r.completed;
  std::printf("  [attack 2] update mutation by controller %u:\n",
              dep->controller_ids()[1]);
  std::printf("             corrupted rules applied: %llu%s\n",
              static_cast<unsigned long long>(corrupted),
              corrupted ? "  <-- loops/black holes planted" : " (quorum filtered them out)");
  std::printf("             flows completed anyway:  %zu / %zu\n", done, flows.size());

  std::uint64_t rejected = 0;
  for (const auto sw : dep->topology().switches()) {
    rejected += dep->switch_at(sw).updates_rejected();
  }
  std::printf("  switches rejected %llu unauthenticated/forged updates in total\n",
              static_cast<unsigned long long>(rejected));
}

}  // namespace

int main() {
  std::printf("One of four controllers is compromised.  Same attacks, two targets.\n");
  attack(core::FrameworkKind::kCrashTolerant);
  attack(core::FrameworkKind::kCicero);
  std::printf("\nCicero's switches apply an update only with a (t=2,n=4)-threshold\n");
  std::printf("signature over its exact body — one key share cannot forge it.\n");
  return 0;
}
