// Membership demo — growing and shrinking a live control plane (§4.3).
//
// Starts a 4-member Cicero domain, adds a fifth controller mid-traffic,
// then removes one — each change ordered through the domain's consensus
// and installed via a real share re-deal.  The headline property is
// printed after every change: the group public key (the one every switch
// verifies against) NEVER changes.
#include <cstdio>

#include "core/deployment.hpp"

using namespace cicero;

namespace {

void show_plane(core::Deployment& dep) {
  const auto ids = dep.domain_controller_ids(0);
  std::printf("  members (%zu): ", ids.size());
  for (const auto id : ids) std::printf("c%u ", id);
  std::printf("| quorum t=%u | group key %s...\n",
              dep.controller(ids.front()).config().quorum,
              dep.group_pk(0).to_hex().substr(0, 18).c_str());
}

}  // namespace

int main() {
  net::FabricParams fabric;
  fabric.racks_per_pod = 3;
  fabric.hosts_per_rack = 2;
  core::DeploymentParams params;
  params.framework = core::FrameworkKind::kCicero;
  params.controllers_per_domain = 4;
  params.real_crypto = true;  // DKG + re-deals below are real crypto
  params.seed = 17;
  core::Deployment dep(net::build_pod(fabric), params);

  const auto pk0 = dep.group_pk(0);
  std::printf("initial control plane (keys from joint-Feldman DKG):\n");
  show_plane(dep);

  // Continuous traffic across all three phases.
  workload::WorkloadParams wl;
  wl.flow_count = 120;
  wl.arrival_rate_per_sec = 30.0;  // ~4 s of traffic
  wl.seed = 3;
  const auto flows = workload::WorkloadGenerator(dep.topology(), wl).generate();
  dep.inject(flows);

  std::uint32_t newcomer = 0;
  dep.simulator().at(sim::seconds(1), [&] {
    std::printf("\n[t=1s] bootstrap proposes ADD of a new controller...\n");
    newcomer = dep.add_controller(0);
  });
  dep.run(sim::seconds(2));
  std::printf("after ADD (share re-deal complete, phase bumped):\n");
  show_plane(dep);
  std::printf("  group key unchanged: %s\n", dep.group_pk(0) == pk0 ? "YES" : "NO (bug!)");

  dep.simulator().at(sim::seconds(3), [&] {
    const auto victim = dep.domain_controller_ids(0).front();
    std::printf("\n[t=3s] proposing REMOVE of controller c%u...\n", victim);
    dep.remove_controller(victim);
  });
  dep.run(sim::seconds(60));

  std::printf("after REMOVE:\n");
  show_plane(dep);
  std::printf("  group key unchanged: %s\n", dep.group_pk(0) == pk0 ? "YES" : "NO (bug!)");

  std::size_t done = 0;
  for (const auto& r : dep.flow_records()) done += r.completed;
  std::printf("\ntraffic through all three membership phases: %zu / %zu flows completed\n",
              done, flows.size());
  std::printf("(events arriving during a change were queued and drained afterwards;\n");
  std::printf(" the new member signs with a share dealt to it without any switch\n");
  std::printf(" ever learning a new public key — the paper's §4.3 guarantee.)\n");
  return 0;
}
