// Quickstart: deploy Cicero on a server pod, push traffic through it, and
// read the metrics — the 60-second tour of the public API.
//
//   1. build a topology            (net::build_pod / build_datacenter / ...)
//   2. deploy a framework on it    (core::Deployment)
//   3. generate a workload         (workload::WorkloadGenerator)
//   4. inject + run                (deterministic discrete-event simulation)
//   5. inspect results             (flow records, CDFs, switch/controller stats)
//   6. export observability        (Perfetto trace + JSON run report)
#include <cstdio>

#include "core/deployment.hpp"
#include "obs/report.hpp"

int main() {
  using namespace cicero;

  // 1. A small Facebook-style server pod: 4 racks, 4 edge switches.
  net::FabricParams fabric;
  fabric.racks_per_pod = 4;
  fabric.hosts_per_rack = 2;
  net::Topology topo = net::build_pod(fabric);
  std::printf("topology: %zu switches, %zu hosts, %zu links\n", topo.switches().size(),
              topo.hosts().size(), topo.link_count());

  // 2. Deploy the full Cicero protocol (BFT-ordered control plane of 4,
  //    threshold-signed updates, switch-side aggregation) with REAL
  //    cryptography end to end.
  core::DeploymentParams params;
  params.framework = core::FrameworkKind::kCicero;
  params.controllers_per_domain = 4;
  params.real_crypto = true;
  params.seed = 2026;
  params.trace = true;  // record sim-time spans for the Perfetto export below
  core::Deployment dep(std::move(topo), params);
  std::printf("control plane: %zu controllers, quorum %u, group key %s...\n",
              dep.controller_ids().size(), dep.controller(0).config().quorum,
              dep.group_pk(0).to_hex().substr(0, 18).c_str());

  // 3. A Hadoop-like workload of 200 flows.
  workload::WorkloadParams wl;
  wl.kind = workload::WorkloadKind::kHadoop;
  wl.flow_count = 200;
  wl.arrival_rate_per_sec = 150.0;
  wl.seed = 7;
  const auto flows = workload::WorkloadGenerator(dep.topology(), wl).generate();

  // 4. Inject and run the simulation to quiescence.
  dep.inject(flows);
  dep.run(sim::seconds(30));

  // 5. Results.
  std::size_t completed = 0, reused = 0;
  for (const auto& r : dep.flow_records()) {
    completed += r.completed;
    reused += r.rule_reused;
  }
  const auto setup = dep.setup_cdf();
  const auto completion = dep.completion_cdf();
  std::printf("\nflows completed:   %zu / %zu (%zu reused installed rules)\n", completed,
              flows.size(), reused);
  std::printf("flow setup:        mean %.2f ms, p99 %.2f ms\n", setup.mean(), setup.p99());
  std::printf("flow completion:   mean %.2f ms, p99 %.2f ms\n", completion.mean(),
              completion.p99());

  std::uint64_t events = 0, updates = 0;
  for (const auto sw : dep.topology().switches()) {
    events += dep.switch_at(sw).events_emitted();
    updates += dep.switch_at(sw).updates_applied();
  }
  std::printf("data plane:        %llu events emitted, %llu quorum-verified updates applied\n",
              static_cast<unsigned long long>(events),
              static_cast<unsigned long long>(updates));
  std::printf("network:           %llu control messages, %llu bytes\n",
              static_cast<unsigned long long>(dep.network().messages_sent()),
              static_cast<unsigned long long>(dep.network().bytes_sent()));
  std::printf("\nevery update above carried a (t=%u, n=%zu) threshold signature;\n",
              dep.controller(0).config().quorum, dep.controller_ids().size());
  std::printf("re-run with params.framework = kCentralized to feel the difference.\n");

  // 6. Export the run's observability: a Chrome trace-event file (open in
  //    https://ui.perfetto.dev — every span sits at its SIMULATED time,
  //    one process per node) and a machine-readable run report.
  if (dep.obs().trace.write_chrome_trace("quickstart.trace.json")) {
    std::printf("\ntrace:  quickstart.trace.json (%zu events; open in Perfetto)\n",
                dep.obs().trace.event_count());
  }
  obs::RunReport report("quickstart");
  report.set_meta("framework", "cicero");
  report.set_meta("flows", static_cast<std::int64_t>(flows.size()));
  report.set_meta("seed", static_cast<std::int64_t>(params.seed));
  report.add_metrics(dep.obs().metrics);
  report.add_crypto_ops(obs::crypto_ops());
  report.add_cdf("setup_ms", setup);
  report.add_cdf("completion_ms", completion);
  if (report.write("quickstart.report.json")) {
    std::printf("report: quickstart.report.json (schema %s)\n", obs::kRunReportSchema);
  }
  return 0;
}
