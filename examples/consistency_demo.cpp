// Consistency demo — the paper's Figs. 1-3, live.
//
// Rebuilds the motivating examples on the 5-switch fabric and shows, step
// by step, how unordered updates create a firewall bypass, a forwarding
// loop, and link congestion — and how the reverse-path scheduler's
// dependence sets make the same transitions invisible to traffic.
#include <cstdio>
#include <map>

#include "net/checker.hpp"
#include "sched/depgraph.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

using namespace cicero;

namespace {

struct Fabric {
  net::Topology topo;
  net::NodeIndex s1, s2, s3, s4, s5, h1, h2, h5;
  std::map<net::NodeIndex, net::FlowTable> tables;

  Fabric() {
    s1 = topo.add_switch("s1", {}, 0);
    s2 = topo.add_switch("s2", {}, 0);
    s3 = topo.add_switch("s3", {}, 0);
    s4 = topo.add_switch("s4", {}, 0);
    s5 = topo.add_switch("s5", {}, 0);
    h1 = topo.add_host("h1", {}, 0);
    h2 = topo.add_host("h2", {}, 0);
    h5 = topo.add_host("h5", {}, 0);
    const double bw = 10e6;
    topo.add_link(s1, s2, bw, sim::microseconds(10));
    topo.add_link(s2, s3, bw, sim::microseconds(10));
    topo.add_link(s1, s4, bw, sim::microseconds(10));
    topo.add_link(s2, s4, bw, sim::microseconds(10));
    topo.add_link(s2, s5, bw, sim::microseconds(10));
    topo.add_link(s3, s5, bw, sim::microseconds(10));
    topo.add_link(s4, s5, bw, sim::microseconds(10));
    topo.add_link(h1, s1, 10 * bw, sim::microseconds(5));
    topo.add_link(h2, s2, 10 * bw, sim::microseconds(5));
    topo.add_link(h5, s5, 10 * bw, sim::microseconds(5));
  }

  net::TableMap table_map() const {
    net::TableMap m;
    for (const auto& [sw, t] : tables) m[sw] = &t;
    return m;
  }
  void apply(const sched::Update& u) {
    std::printf("      apply %-7s at %-3s", u.op == sched::UpdateOp::kInstall ? "INSTALL" : "REMOVE",
                topo.node(u.switch_node).name.c_str());
    if (u.op == sched::UpdateOp::kInstall) {
      tables[u.switch_node].install(u.rule);
      std::printf(" (next hop %s)", topo.node(u.rule.next_hop).name.c_str());
    } else {
      tables[u.switch_node].remove(u.rule.match);
    }
    std::printf("\n");
  }
  const char* status(net::NodeIndex src, net::NodeIndex dst) {
    switch (net::trace_flow(topo, table_map(), src, dst).status) {
      case net::TraceStatus::kDelivered:
        return "DELIVERED";
      case net::TraceStatus::kLoop:
        return "** LOOP **";
      case net::TraceStatus::kBlackHole:
        return "** BLACK HOLE **";
      default:
        return "no ingress rule (traffic held back)";
    }
  }
};

void run_schedule(Fabric& f, const sched::UpdateSchedule& schedule, net::NodeIndex src,
                  net::NodeIndex dst, bool worst_order) {
  if (worst_order) {
    // Adversarial: apply in plain id order (ingress first).
    for (const auto& su : schedule.updates) {
      f.apply(su.update);
      std::printf("        flow state: %s\n", f.status(src, dst));
    }
    return;
  }
  sched::DependencyTracker tracker;
  util::Rng rng(1);
  auto ready = tracker.add(schedule);
  while (!ready.empty()) {
    const std::size_t pick = static_cast<std::size_t>(rng.next_below(ready.size()));
    const auto id = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
    f.apply(tracker.update(id));
    std::printf("        flow state: %s\n", f.status(src, dst));
    for (const auto next : tracker.complete(id)) ready.push_back(next);
  }
}

}  // namespace

int main() {
  std::printf("=== Fig. 1/2: establishing h2 -> h5 around a failed link ===\n\n");
  for (const bool naive : {true, false}) {
    Fabric f;
    const net::FlowMatch m{f.h2, f.h5};
    // Existing state: h2 -> s2 -> s4 -> s5 (s4-s5 is about to fail) and a
    // stale rule at s3 pointing back at s2.
    f.tables[f.s2].install({m, f.s4, 1e6});
    f.tables[f.s4].install({m, f.s5, 1e6});
    f.tables[f.s5].install({m, f.h5, 1e6});
    f.tables[f.s3].install({m, f.s2, 1e6});

    sched::RouteIntent reroute;
    reroute.kind = sched::RouteIntent::Kind::kEstablish;
    reroute.match = m;
    reroute.path = {f.h2, f.s2, f.s3, f.s5, f.h5};
    reroute.reserved_bps = 1e6;

    if (naive) {
      std::printf("  -- naive scheduler, unlucky order (the Fig. 2 bug) --\n");
      run_schedule(f, sched::NaiveScheduler().build(reroute, 1), f.h2, f.h5, true);
    } else {
      std::printf("\n  -- reverse-path scheduler, any dependence-respecting order --\n");
      run_schedule(f, sched::ReversePathScheduler().build(reroute, 1), f.h2, f.h5, false);
    }
  }

  std::printf("\n=== Fig. 3: moving flows without over-provisioning s4-s5 ===\n\n");
  Fabric f;
  const net::FlowMatch a{f.h2, f.h5};
  f.tables[f.s2].install({a, f.s4, 6e6});
  f.tables[f.s4].install({a, f.s5, 6e6});
  f.tables[f.s5].install({a, f.h5, 6e6});

  sched::RouteIntent teardown_a;
  teardown_a.kind = sched::RouteIntent::Kind::kTeardown;
  teardown_a.match = a;
  teardown_a.path = {f.h2, f.s2, f.s4, f.s5, f.h5};
  teardown_a.reserved_bps = 6e6;
  sched::RouteIntent establish_b;
  establish_b.kind = sched::RouteIntent::Kind::kEstablish;
  establish_b.match = {f.h1, f.h5};
  establish_b.path = {f.h1, f.s1, f.s2, f.s4, f.s5, f.h5};
  establish_b.reserved_bps = 6e6;

  const auto batch = sched::DionysusLiteScheduler().build_batch({teardown_a, establish_b}, 1);
  sched::DependencyTracker tracker;
  util::Rng rng(3);
  auto ready = tracker.add(batch);
  bool ever_overloaded = false;
  while (!ready.empty()) {
    const std::size_t pick = static_cast<std::size_t>(rng.next_below(ready.size()));
    const auto id = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
    f.apply(tracker.update(id));
    const bool overloaded = !net::overloaded_links(f.topo, f.table_map()).empty();
    ever_overloaded |= overloaded;
    std::printf("        s4-s5 load: %s\n", overloaded ? "** OVERLOADED **" : "within capacity");
    for (const auto next : tracker.complete(id)) ready.push_back(next);
  }
  std::printf("\n  capacity-release ordering kept the link within budget: %s\n",
              ever_overloaded ? "NO (bug!)" : "yes");
  return 0;
}
