// Multi-domain demo — the paper's Fig. 5 walkthrough.
//
// Two pods, each its own Cicero domain with its own control plane and its
// own threshold key, plus an interconnect domain.  A flow from a host in
// domain A to a host in domain B triggers one event at A's ingress
// switch; A's control plane forwards it (tagged non-reforwardable) to B
// and to the interconnect, and all three planes install their segments in
// parallel.
#include <cstdio>

#include "core/deployment.hpp"

using namespace cicero;

int main() {
  net::FabricParams fabric;
  fabric.racks_per_pod = 2;
  fabric.hosts_per_rack = 2;
  fabric.pods_per_dc = 2;
  fabric.domain_per_pod = true;
  core::DeploymentParams params;
  params.framework = core::FrameworkKind::kCicero;
  params.controllers_per_domain = 4;
  params.real_crypto = true;
  params.seed = 5;
  params.trace = true;  // capture the cross-domain event fan-out as spans
  core::Deployment dep(net::build_datacenter(fabric), params);

  const auto domains = dep.topology().domains();
  std::printf("domains: %zu\n", domains.size());
  for (const auto d : domains) {
    std::printf("  domain %u: %zu switches, %zu controllers, group key %s...\n", d,
                dep.topology().switches_in_domain(d).size(),
                dep.domain_controller_ids(d).size(),
                dep.group_pk(d).to_hex().substr(0, 18).c_str());
  }

  // Pick a cross-pod flow (Fig. 5's s1 -> s4).
  net::NodeIndex src = net::kNoNode, dst = net::kNoNode;
  for (const auto h : dep.topology().hosts()) {
    const auto pod = dep.topology().node(h).placement.pod;
    if (pod == 0 && src == net::kNoNode) src = h;
    if (pod == 1 && dst == net::kNoNode) dst = h;
  }
  const auto path = dep.topology().shortest_path(src, dst);
  std::printf("\ncross-domain flow %s -> %s, route:\n  ", dep.topology().node(src).name.c_str(),
              dep.topology().node(dst).name.c_str());
  for (const auto n : path) {
    std::printf("%s(d%u) ", dep.topology().node(n).name.c_str(), dep.topology().node(n).domain);
  }
  std::printf("\n");

  workload::Flow f;
  f.arrival = sim::milliseconds(1);
  f.src_host = src;
  f.dst_host = dst;
  f.size_bytes = 2e5;
  f.reserved_bps = 1e6;
  dep.inject({f});
  dep.run(sim::seconds(10));

  const auto& rec = dep.flow_records().front();
  std::printf("\nflow completed: %s (setup %.2f ms, completion %.2f ms)\n",
              rec.completed ? "yes" : "NO",
              sim::to_ms(rec.route_ready - rec.flow.arrival),
              sim::to_ms(rec.completion - rec.flow.arrival));

  std::printf("\nper-domain event processing (each plane handled its segment):\n");
  for (const auto d : domains) {
    std::uint64_t processed = 0, forwarded = 0;
    for (const auto id : dep.domain_controller_ids(d)) {
      processed = std::max(processed, dep.controller(id).events_processed());
      forwarded += dep.controller(id).events_forwarded();
    }
    std::printf("  domain %u: events processed %llu, forwarded to peers %llu\n", d,
                static_cast<unsigned long long>(processed),
                static_cast<unsigned long long>(forwarded));
  }
  std::printf("\nthe event was signed once by the origin switch; each domain verified\n");
  std::printf("that same signature — the forwarded tag (outside the signed body)\n");
  std::printf("stopped further propagation (paper Fig. 5 / §4.1).\n");

  if (dep.obs().trace.write_chrome_trace("multidomain_demo.trace.json")) {
    std::printf("\ntrace: multidomain_demo.trace.json (%zu events; open in Perfetto to\n",
                dep.obs().trace.event_count());
    std::printf("see all three domains install their segments in parallel)\n");
  }
  return 0;
}
