# Empty dependencies file for bench_fig11d_switch_cpu.
# This may be replaced when dependencies are built.
