
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2_features.cpp" "bench/CMakeFiles/bench_table2_features.dir/bench_table2_features.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_features.dir/bench_table2_features.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cicero_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cicero_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bft/CMakeFiles/cicero_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cicero_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cicero_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cicero_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cicero_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cicero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
