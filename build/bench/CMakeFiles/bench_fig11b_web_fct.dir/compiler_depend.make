# Empty compiler generated dependencies file for bench_fig11b_web_fct.
# This may be replaced when dependencies are built.
