file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11b_web_fct.dir/bench_fig11b_web_fct.cpp.o"
  "CMakeFiles/bench_fig11b_web_fct.dir/bench_fig11b_web_fct.cpp.o.d"
  "bench_fig11b_web_fct"
  "bench_fig11b_web_fct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_web_fct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
