# Empty dependencies file for bench_fig12b_event_locality.
# This may be replaced when dependencies are built.
