file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12b_event_locality.dir/bench_fig12b_event_locality.cpp.o"
  "CMakeFiles/bench_fig12b_event_locality.dir/bench_fig12b_event_locality.cpp.o.d"
  "bench_fig12b_event_locality"
  "bench_fig12b_event_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12b_event_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
