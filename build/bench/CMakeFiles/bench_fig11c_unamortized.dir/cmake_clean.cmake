file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11c_unamortized.dir/bench_fig11c_unamortized.cpp.o"
  "CMakeFiles/bench_fig11c_unamortized.dir/bench_fig11c_unamortized.cpp.o.d"
  "bench_fig11c_unamortized"
  "bench_fig11c_unamortized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11c_unamortized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
