# Empty compiler generated dependencies file for bench_fig11c_unamortized.
# This may be replaced when dependencies are built.
