# Empty dependencies file for bench_fig11a_hadoop_fct.
# This may be replaced when dependencies are built.
