file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12d_multidc.dir/bench_fig12d_multidc.cpp.o"
  "CMakeFiles/bench_fig12d_multidc.dir/bench_fig12d_multidc.cpp.o.d"
  "bench_fig12d_multidc"
  "bench_fig12d_multidc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12d_multidc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
