# Empty dependencies file for bench_fig12d_multidc.
# This may be replaced when dependencies are built.
