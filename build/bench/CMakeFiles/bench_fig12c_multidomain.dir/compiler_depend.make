# Empty compiler generated dependencies file for bench_fig12c_multidomain.
# This may be replaced when dependencies are built.
