file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12c_multidomain.dir/bench_fig12c_multidomain.cpp.o"
  "CMakeFiles/bench_fig12c_multidomain.dir/bench_fig12c_multidomain.cpp.o.d"
  "bench_fig12c_multidomain"
  "bench_fig12c_multidomain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12c_multidomain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
