# Empty compiler generated dependencies file for bench_fig12a_cp_size.
# This may be replaced when dependencies are built.
