file(REMOVE_RECURSE
  "libcicero_core.a"
)
