file(REMOVE_RECURSE
  "CMakeFiles/cicero_core.dir/audit.cpp.o"
  "CMakeFiles/cicero_core.dir/audit.cpp.o.d"
  "CMakeFiles/cicero_core.dir/controller.cpp.o"
  "CMakeFiles/cicero_core.dir/controller.cpp.o.d"
  "CMakeFiles/cicero_core.dir/deployment.cpp.o"
  "CMakeFiles/cicero_core.dir/deployment.cpp.o.d"
  "CMakeFiles/cicero_core.dir/framework.cpp.o"
  "CMakeFiles/cicero_core.dir/framework.cpp.o.d"
  "CMakeFiles/cicero_core.dir/messages.cpp.o"
  "CMakeFiles/cicero_core.dir/messages.cpp.o.d"
  "CMakeFiles/cicero_core.dir/pki.cpp.o"
  "CMakeFiles/cicero_core.dir/pki.cpp.o.d"
  "CMakeFiles/cicero_core.dir/switch_runtime.cpp.o"
  "CMakeFiles/cicero_core.dir/switch_runtime.cpp.o.d"
  "libcicero_core.a"
  "libcicero_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cicero_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
