
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/audit.cpp" "src/core/CMakeFiles/cicero_core.dir/audit.cpp.o" "gcc" "src/core/CMakeFiles/cicero_core.dir/audit.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/cicero_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/cicero_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/deployment.cpp" "src/core/CMakeFiles/cicero_core.dir/deployment.cpp.o" "gcc" "src/core/CMakeFiles/cicero_core.dir/deployment.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/cicero_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/cicero_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/messages.cpp" "src/core/CMakeFiles/cicero_core.dir/messages.cpp.o" "gcc" "src/core/CMakeFiles/cicero_core.dir/messages.cpp.o.d"
  "/root/repo/src/core/pki.cpp" "src/core/CMakeFiles/cicero_core.dir/pki.cpp.o" "gcc" "src/core/CMakeFiles/cicero_core.dir/pki.cpp.o.d"
  "/root/repo/src/core/switch_runtime.cpp" "src/core/CMakeFiles/cicero_core.dir/switch_runtime.cpp.o" "gcc" "src/core/CMakeFiles/cicero_core.dir/switch_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cicero_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cicero_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cicero_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cicero_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cicero_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/bft/CMakeFiles/cicero_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cicero_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
