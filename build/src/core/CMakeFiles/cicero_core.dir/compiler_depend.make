# Empty compiler generated dependencies file for cicero_core.
# This may be replaced when dependencies are built.
