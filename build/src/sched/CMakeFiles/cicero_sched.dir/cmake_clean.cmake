file(REMOVE_RECURSE
  "CMakeFiles/cicero_sched.dir/depgraph.cpp.o"
  "CMakeFiles/cicero_sched.dir/depgraph.cpp.o.d"
  "CMakeFiles/cicero_sched.dir/scheduler.cpp.o"
  "CMakeFiles/cicero_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/cicero_sched.dir/update.cpp.o"
  "CMakeFiles/cicero_sched.dir/update.cpp.o.d"
  "libcicero_sched.a"
  "libcicero_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cicero_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
