file(REMOVE_RECURSE
  "libcicero_sched.a"
)
