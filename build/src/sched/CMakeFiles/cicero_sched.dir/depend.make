# Empty dependencies file for cicero_sched.
# This may be replaced when dependencies are built.
