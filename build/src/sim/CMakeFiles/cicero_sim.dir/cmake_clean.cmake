file(REMOVE_RECURSE
  "CMakeFiles/cicero_sim.dir/cpu.cpp.o"
  "CMakeFiles/cicero_sim.dir/cpu.cpp.o.d"
  "CMakeFiles/cicero_sim.dir/network.cpp.o"
  "CMakeFiles/cicero_sim.dir/network.cpp.o.d"
  "CMakeFiles/cicero_sim.dir/simulator.cpp.o"
  "CMakeFiles/cicero_sim.dir/simulator.cpp.o.d"
  "libcicero_sim.a"
  "libcicero_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cicero_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
