# Empty dependencies file for cicero_sim.
# This may be replaced when dependencies are built.
