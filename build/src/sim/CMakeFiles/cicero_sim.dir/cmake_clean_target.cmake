file(REMOVE_RECURSE
  "libcicero_sim.a"
)
