file(REMOVE_RECURSE
  "libcicero_util.a"
)
