# Empty dependencies file for cicero_util.
# This may be replaced when dependencies are built.
