file(REMOVE_RECURSE
  "CMakeFiles/cicero_util.dir/bytes.cpp.o"
  "CMakeFiles/cicero_util.dir/bytes.cpp.o.d"
  "CMakeFiles/cicero_util.dir/logging.cpp.o"
  "CMakeFiles/cicero_util.dir/logging.cpp.o.d"
  "CMakeFiles/cicero_util.dir/rng.cpp.o"
  "CMakeFiles/cicero_util.dir/rng.cpp.o.d"
  "CMakeFiles/cicero_util.dir/serialize.cpp.o"
  "CMakeFiles/cicero_util.dir/serialize.cpp.o.d"
  "CMakeFiles/cicero_util.dir/stats.cpp.o"
  "CMakeFiles/cicero_util.dir/stats.cpp.o.d"
  "libcicero_util.a"
  "libcicero_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cicero_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
