# Empty dependencies file for cicero_bft.
# This may be replaced when dependencies are built.
