
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bft/failure_detector.cpp" "src/bft/CMakeFiles/cicero_bft.dir/failure_detector.cpp.o" "gcc" "src/bft/CMakeFiles/cicero_bft.dir/failure_detector.cpp.o.d"
  "/root/repo/src/bft/messages.cpp" "src/bft/CMakeFiles/cicero_bft.dir/messages.cpp.o" "gcc" "src/bft/CMakeFiles/cicero_bft.dir/messages.cpp.o.d"
  "/root/repo/src/bft/pbft.cpp" "src/bft/CMakeFiles/cicero_bft.dir/pbft.cpp.o" "gcc" "src/bft/CMakeFiles/cicero_bft.dir/pbft.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cicero_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cicero_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cicero_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
