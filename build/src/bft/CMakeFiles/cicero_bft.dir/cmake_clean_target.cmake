file(REMOVE_RECURSE
  "libcicero_bft.a"
)
