file(REMOVE_RECURSE
  "CMakeFiles/cicero_bft.dir/failure_detector.cpp.o"
  "CMakeFiles/cicero_bft.dir/failure_detector.cpp.o.d"
  "CMakeFiles/cicero_bft.dir/messages.cpp.o"
  "CMakeFiles/cicero_bft.dir/messages.cpp.o.d"
  "CMakeFiles/cicero_bft.dir/pbft.cpp.o"
  "CMakeFiles/cicero_bft.dir/pbft.cpp.o.d"
  "libcicero_bft.a"
  "libcicero_bft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cicero_bft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
