file(REMOVE_RECURSE
  "CMakeFiles/cicero_net.dir/checker.cpp.o"
  "CMakeFiles/cicero_net.dir/checker.cpp.o.d"
  "CMakeFiles/cicero_net.dir/flow_table.cpp.o"
  "CMakeFiles/cicero_net.dir/flow_table.cpp.o.d"
  "CMakeFiles/cicero_net.dir/topology.cpp.o"
  "CMakeFiles/cicero_net.dir/topology.cpp.o.d"
  "libcicero_net.a"
  "libcicero_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cicero_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
