# Empty dependencies file for cicero_net.
# This may be replaced when dependencies are built.
