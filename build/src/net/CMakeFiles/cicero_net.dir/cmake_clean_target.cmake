file(REMOVE_RECURSE
  "libcicero_net.a"
)
