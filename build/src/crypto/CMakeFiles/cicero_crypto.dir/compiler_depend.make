# Empty compiler generated dependencies file for cicero_crypto.
# This may be replaced when dependencies are built.
