file(REMOVE_RECURSE
  "CMakeFiles/cicero_crypto.dir/dkg.cpp.o"
  "CMakeFiles/cicero_crypto.dir/dkg.cpp.o.d"
  "CMakeFiles/cicero_crypto.dir/drbg.cpp.o"
  "CMakeFiles/cicero_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/cicero_crypto.dir/fp.cpp.o"
  "CMakeFiles/cicero_crypto.dir/fp.cpp.o.d"
  "CMakeFiles/cicero_crypto.dir/frost.cpp.o"
  "CMakeFiles/cicero_crypto.dir/frost.cpp.o.d"
  "CMakeFiles/cicero_crypto.dir/group.cpp.o"
  "CMakeFiles/cicero_crypto.dir/group.cpp.o.d"
  "CMakeFiles/cicero_crypto.dir/schnorr.cpp.o"
  "CMakeFiles/cicero_crypto.dir/schnorr.cpp.o.d"
  "CMakeFiles/cicero_crypto.dir/sha256.cpp.o"
  "CMakeFiles/cicero_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/cicero_crypto.dir/shamir.cpp.o"
  "CMakeFiles/cicero_crypto.dir/shamir.cpp.o.d"
  "CMakeFiles/cicero_crypto.dir/simbls.cpp.o"
  "CMakeFiles/cicero_crypto.dir/simbls.cpp.o.d"
  "CMakeFiles/cicero_crypto.dir/u256.cpp.o"
  "CMakeFiles/cicero_crypto.dir/u256.cpp.o.d"
  "libcicero_crypto.a"
  "libcicero_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cicero_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
