
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/dkg.cpp" "src/crypto/CMakeFiles/cicero_crypto.dir/dkg.cpp.o" "gcc" "src/crypto/CMakeFiles/cicero_crypto.dir/dkg.cpp.o.d"
  "/root/repo/src/crypto/drbg.cpp" "src/crypto/CMakeFiles/cicero_crypto.dir/drbg.cpp.o" "gcc" "src/crypto/CMakeFiles/cicero_crypto.dir/drbg.cpp.o.d"
  "/root/repo/src/crypto/fp.cpp" "src/crypto/CMakeFiles/cicero_crypto.dir/fp.cpp.o" "gcc" "src/crypto/CMakeFiles/cicero_crypto.dir/fp.cpp.o.d"
  "/root/repo/src/crypto/frost.cpp" "src/crypto/CMakeFiles/cicero_crypto.dir/frost.cpp.o" "gcc" "src/crypto/CMakeFiles/cicero_crypto.dir/frost.cpp.o.d"
  "/root/repo/src/crypto/group.cpp" "src/crypto/CMakeFiles/cicero_crypto.dir/group.cpp.o" "gcc" "src/crypto/CMakeFiles/cicero_crypto.dir/group.cpp.o.d"
  "/root/repo/src/crypto/schnorr.cpp" "src/crypto/CMakeFiles/cicero_crypto.dir/schnorr.cpp.o" "gcc" "src/crypto/CMakeFiles/cicero_crypto.dir/schnorr.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/cicero_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/cicero_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/shamir.cpp" "src/crypto/CMakeFiles/cicero_crypto.dir/shamir.cpp.o" "gcc" "src/crypto/CMakeFiles/cicero_crypto.dir/shamir.cpp.o.d"
  "/root/repo/src/crypto/simbls.cpp" "src/crypto/CMakeFiles/cicero_crypto.dir/simbls.cpp.o" "gcc" "src/crypto/CMakeFiles/cicero_crypto.dir/simbls.cpp.o.d"
  "/root/repo/src/crypto/u256.cpp" "src/crypto/CMakeFiles/cicero_crypto.dir/u256.cpp.o" "gcc" "src/crypto/CMakeFiles/cicero_crypto.dir/u256.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cicero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
