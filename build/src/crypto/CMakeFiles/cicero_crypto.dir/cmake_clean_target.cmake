file(REMOVE_RECURSE
  "libcicero_crypto.a"
)
