file(REMOVE_RECURSE
  "libcicero_workload.a"
)
