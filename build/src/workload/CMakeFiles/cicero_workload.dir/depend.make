# Empty dependencies file for cicero_workload.
# This may be replaced when dependencies are built.
