file(REMOVE_RECURSE
  "CMakeFiles/cicero_workload.dir/workload.cpp.o"
  "CMakeFiles/cicero_workload.dir/workload.cpp.o.d"
  "libcicero_workload.a"
  "libcicero_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cicero_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
