# Empty dependencies file for multidomain_demo.
# This may be replaced when dependencies are built.
