file(REMOVE_RECURSE
  "CMakeFiles/multidomain_demo.dir/multidomain_demo.cpp.o"
  "CMakeFiles/multidomain_demo.dir/multidomain_demo.cpp.o.d"
  "multidomain_demo"
  "multidomain_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidomain_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
