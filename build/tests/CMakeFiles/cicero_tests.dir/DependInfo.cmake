
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bft/failure_detector_test.cpp" "tests/CMakeFiles/cicero_tests.dir/bft/failure_detector_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/bft/failure_detector_test.cpp.o.d"
  "/root/repo/tests/bft/messages_test.cpp" "tests/CMakeFiles/cicero_tests.dir/bft/messages_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/bft/messages_test.cpp.o.d"
  "/root/repo/tests/bft/pbft_test.cpp" "tests/CMakeFiles/cicero_tests.dir/bft/pbft_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/bft/pbft_test.cpp.o.d"
  "/root/repo/tests/core/audit_test.cpp" "tests/CMakeFiles/cicero_tests.dir/core/audit_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/core/audit_test.cpp.o.d"
  "/root/repo/tests/core/framework_test.cpp" "tests/CMakeFiles/cicero_tests.dir/core/framework_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/core/framework_test.cpp.o.d"
  "/root/repo/tests/core/messages_test.cpp" "tests/CMakeFiles/cicero_tests.dir/core/messages_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/core/messages_test.cpp.o.d"
  "/root/repo/tests/core/switch_runtime_test.cpp" "tests/CMakeFiles/cicero_tests.dir/core/switch_runtime_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/core/switch_runtime_test.cpp.o.d"
  "/root/repo/tests/crypto/dkg_test.cpp" "tests/CMakeFiles/cicero_tests.dir/crypto/dkg_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/crypto/dkg_test.cpp.o.d"
  "/root/repo/tests/crypto/drbg_test.cpp" "tests/CMakeFiles/cicero_tests.dir/crypto/drbg_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/crypto/drbg_test.cpp.o.d"
  "/root/repo/tests/crypto/fp_test.cpp" "tests/CMakeFiles/cicero_tests.dir/crypto/fp_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/crypto/fp_test.cpp.o.d"
  "/root/repo/tests/crypto/frost_test.cpp" "tests/CMakeFiles/cicero_tests.dir/crypto/frost_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/crypto/frost_test.cpp.o.d"
  "/root/repo/tests/crypto/group_test.cpp" "tests/CMakeFiles/cicero_tests.dir/crypto/group_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/crypto/group_test.cpp.o.d"
  "/root/repo/tests/crypto/schnorr_test.cpp" "tests/CMakeFiles/cicero_tests.dir/crypto/schnorr_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/crypto/schnorr_test.cpp.o.d"
  "/root/repo/tests/crypto/sha256_test.cpp" "tests/CMakeFiles/cicero_tests.dir/crypto/sha256_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/crypto/sha256_test.cpp.o.d"
  "/root/repo/tests/crypto/shamir_test.cpp" "tests/CMakeFiles/cicero_tests.dir/crypto/shamir_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/crypto/shamir_test.cpp.o.d"
  "/root/repo/tests/crypto/simbls_test.cpp" "tests/CMakeFiles/cicero_tests.dir/crypto/simbls_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/crypto/simbls_test.cpp.o.d"
  "/root/repo/tests/crypto/u256_test.cpp" "tests/CMakeFiles/cicero_tests.dir/crypto/u256_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/crypto/u256_test.cpp.o.d"
  "/root/repo/tests/integration/byzantine_test.cpp" "tests/CMakeFiles/cicero_tests.dir/integration/byzantine_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/integration/byzantine_test.cpp.o.d"
  "/root/repo/tests/integration/consistency_scenarios_test.cpp" "tests/CMakeFiles/cicero_tests.dir/integration/consistency_scenarios_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/integration/consistency_scenarios_test.cpp.o.d"
  "/root/repo/tests/integration/crash_tolerance_test.cpp" "tests/CMakeFiles/cicero_tests.dir/integration/crash_tolerance_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/integration/crash_tolerance_test.cpp.o.d"
  "/root/repo/tests/integration/deployment_test.cpp" "tests/CMakeFiles/cicero_tests.dir/integration/deployment_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/integration/deployment_test.cpp.o.d"
  "/root/repo/tests/integration/frost_backend_test.cpp" "tests/CMakeFiles/cicero_tests.dir/integration/frost_backend_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/integration/frost_backend_test.cpp.o.d"
  "/root/repo/tests/integration/link_failure_test.cpp" "tests/CMakeFiles/cicero_tests.dir/integration/link_failure_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/integration/link_failure_test.cpp.o.d"
  "/root/repo/tests/integration/membership_test.cpp" "tests/CMakeFiles/cicero_tests.dir/integration/membership_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/integration/membership_test.cpp.o.d"
  "/root/repo/tests/integration/multidomain_test.cpp" "tests/CMakeFiles/cicero_tests.dir/integration/multidomain_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/integration/multidomain_test.cpp.o.d"
  "/root/repo/tests/integration/workload_test.cpp" "tests/CMakeFiles/cicero_tests.dir/integration/workload_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/integration/workload_test.cpp.o.d"
  "/root/repo/tests/net/checker_test.cpp" "tests/CMakeFiles/cicero_tests.dir/net/checker_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/net/checker_test.cpp.o.d"
  "/root/repo/tests/net/flow_table_test.cpp" "tests/CMakeFiles/cicero_tests.dir/net/flow_table_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/net/flow_table_test.cpp.o.d"
  "/root/repo/tests/net/topology_test.cpp" "tests/CMakeFiles/cicero_tests.dir/net/topology_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/net/topology_test.cpp.o.d"
  "/root/repo/tests/sched/depgraph_test.cpp" "tests/CMakeFiles/cicero_tests.dir/sched/depgraph_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/sched/depgraph_test.cpp.o.d"
  "/root/repo/tests/sched/scheduler_test.cpp" "tests/CMakeFiles/cicero_tests.dir/sched/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/sched/scheduler_test.cpp.o.d"
  "/root/repo/tests/sim/cpu_test.cpp" "tests/CMakeFiles/cicero_tests.dir/sim/cpu_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/sim/cpu_test.cpp.o.d"
  "/root/repo/tests/sim/network_test.cpp" "tests/CMakeFiles/cicero_tests.dir/sim/network_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/sim/network_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/cicero_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/util/bytes_test.cpp" "tests/CMakeFiles/cicero_tests.dir/util/bytes_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/util/bytes_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/cicero_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/serialize_test.cpp" "tests/CMakeFiles/cicero_tests.dir/util/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/util/serialize_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/cicero_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/cicero_tests.dir/util/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cicero_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cicero_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/bft/CMakeFiles/cicero_bft.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/cicero_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cicero_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cicero_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cicero_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cicero_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
