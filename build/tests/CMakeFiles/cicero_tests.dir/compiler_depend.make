# Empty compiler generated dependencies file for cicero_tests.
# This may be replaced when dependencies are built.
