#!/usr/bin/env bash
# Entry point for the repo's policy linters:
#   - ct-lint:  constant-time / secret-taint rules over crypto code
#   - simlint:  determinism & shard-safety rules over the simulation core
# Each linter runs its own self-test first, so a silently-broken linter
# (a regex that stopped matching, a rule that stopped firing) can't pass
# CI by scanning nothing.  Both share tools/lintlib.py for file walking,
# noise stripping and suppression handling.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

python3 "${ROOT}/tools/ctlint/ctlint.py" --self-test
python3 "${ROOT}/tools/ctlint/ctlint.py" --root "${ROOT}"
python3 "${ROOT}/tools/simlint/simlint.py" --self-test
python3 "${ROOT}/tools/simlint/simlint.py" --root "${ROOT}"
