#!/usr/bin/env bash
# Entry point for the repo's static checks.  Today that is ct-lint (the
# constant-time / secret-taint policy scanner); run both the tree scan and
# the linter's own self-test so a silently-broken linter can't pass CI.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

python3 "${ROOT}/tools/ctlint/ctlint.py" --self-test
python3 "${ROOT}/tools/ctlint/ctlint.py" --root "${ROOT}"
