#!/usr/bin/env bash
# Runs the crypto micro-benchmarks and records the results as JSON, then
# the observability smoke pass: the obs-overhead guard, the Fig. 11a
# bench (which emits a machine-readable run report), the scale smoke
# bench, the decentralized-execution comparison bench, the in-network
# aggregation control-plane-size sweep, the schema
# checker (tools/obs/check_obs.py) over the emitted
# artifacts, and the perf gate (tools/obs/bench_diff.py) against the
# committed baselines in bench/baselines/.
#
# Usage: scripts/run_benches.sh [build-dir] [output-json]
#   build-dir    defaults to ./build (configured+built already)
#   output-json  defaults to BENCH_crypto.json in the repo root
#
# Bench artifacts land in bench/out/ (gitignored).  To refresh a perf
# baseline after an intentional change, copy the new report over:
#   cp bench/out/BENCH_scale.report.json bench/baselines/
#
# The JSON output is the calibration input for core::CostModel (see
# EXPERIMENTS.md "Calibration"); re-run this after touching src/crypto.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_crypto.json}"
bench_out="$repo_root/bench/out"
mkdir -p "$bench_out"

bench_bin="$build_dir/bench/bench_crypto_micro"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not found or not executable." >&2
  echo "Build first: cmake -B '$build_dir' -S '$repo_root' && cmake --build '$build_dir' -j" >&2
  exit 1
fi

echo "Running bench_crypto_micro -> $out_json"
"$bench_bin" \
  --benchmark_format=json \
  --benchmark_out="$out_json" \
  --benchmark_out_format=json

echo "Done. Summary (name: real_time):"
python3 - "$out_json" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
for b in data.get("benchmarks", []):
    print(f"  {b['name']:<28} {b['real_time']:>12.0f} {b['time_unit']}")
EOF

echo
echo "Running bench_obs_overhead (asserts alloc-free disabled hot path)"
"$build_dir/bench/bench_obs_overhead"

echo
echo "Running bench_fig11a_hadoop_fct -> $bench_out/BENCH_fig11a.report.json"
CICERO_REPORT_DIR="$bench_out" "$build_dir/bench/bench_fig11a_hadoop_fct" > /dev/null

echo "Validating run report"
python3 "$repo_root/tools/obs/check_obs.py" "$bench_out/BENCH_fig11a.report.json"

echo
echo "Running bench_scale --smoke -> $bench_out/BENCH_scale.report.json"
CICERO_REPORT_DIR="$bench_out" "$build_dir/bench/bench_scale" --smoke

echo "Validating scale run report"
python3 "$repo_root/tools/obs/check_obs.py" "$bench_out/BENCH_scale.report.json"

echo
echo "Running bench_decentralized -> $bench_out/BENCH_decentralized.report.json"
CICERO_REPORT_DIR="$bench_out" "$build_dir/bench/bench_decentralized" > /dev/null

echo "Validating decentralized run report"
python3 "$repo_root/tools/obs/check_obs.py" "$bench_out/BENCH_decentralized.report.json"

echo
echo "Running bench_innet_cp_size -> $bench_out/BENCH_innet.report.json"
CICERO_REPORT_DIR="$bench_out" "$build_dir/bench/bench_innet_cp_size" > /dev/null

echo "Validating in-network aggregation run report"
python3 "$repo_root/tools/obs/check_obs.py" "$bench_out/BENCH_innet.report.json"

echo
echo "Perf gate: bench_diff vs bench/baselines/"
python3 "$repo_root/tools/obs/bench_diff.py" --self-test
diff_rc=0
for report in "$bench_out"/BENCH_*.report.json; do
  base="$repo_root/bench/baselines/$(basename "$report")"
  if [[ -f "$base" ]]; then
    python3 "$repo_root/tools/obs/bench_diff.py" "$report" "$base" \
      ${BENCH_DIFF_SOFT:+--soft} || diff_rc=$?
  fi
done
if [[ "$diff_rc" -ne 0 ]]; then
  echo "perf gate: regression detected (see above; refresh bench/baselines/ if intended)" >&2
  exit "$diff_rc"
fi

echo
# Chaos smoke: one deterministic lossy-network run.  The chaos binary is
# only present when the full test tree was built (obs-smoke CI builds
# selected bench/example targets only), so its absence is not an error.
chaos_bin="$build_dir/tests/cicero_chaos_tests"
if [[ -x "$chaos_bin" ]]; then
  echo "Running chaos smoke (seeded loss determinism)"
  "$chaos_bin" --gtest_filter='ChaosDeterminism.SameSeedBitIdenticalRun'
else
  echo "Chaos suite not built ($chaos_bin missing); skipping chaos smoke."
fi
