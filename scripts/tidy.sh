#!/usr/bin/env bash
# clang-tidy gate for the CI `analyze` job.
#
# Configures a dedicated build tree with a compile-commands database,
# runs clang-tidy (profile: .clang-tidy at the repo root) over every
# first-party translation unit under src/, and compares the findings to
# the checked-in baseline (tools/tidy_baseline.txt).  The baseline is
# empty by policy — any finding fails the gate; fix it at the source or
# NOLINT it with a justification in the code.
#
# Usage: scripts/tidy.sh [build-dir]
#   build-dir defaults to build-tidy; CI caches it so reconfiguration
#   (and clang-tidy's header re-parsing) is incremental across runs.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build-tidy}"
BASELINE="${ROOT}/tools/tidy_baseline.txt"

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${TIDY}" >/dev/null 2>&1; then
  echo "tidy.sh: '${TIDY}' not found on PATH." >&2
  echo "tidy.sh: install clang-tidy (or set CLANG_TIDY=<binary>); the" >&2
  echo "tidy.sh: container used for local development ships only gcc, so" >&2
  echo "tidy.sh: this gate normally runs in the CI analyze job." >&2
  exit 2
fi

# Compile-commands only — the database does not need a completed build,
# so -DCMAKE_EXPORT_COMPILE_COMMANDS is enough and no `cmake --build`
# happens here.  Prefer clang as the compiler when available so the
# database's flags match what clang-tidy's bundled clang understands.
CONFIG_ARGS=(-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)
if command -v clang++ >/dev/null 2>&1; then
  CONFIG_ARGS+=(-DCMAKE_CXX_COMPILER=clang++)
fi
cmake -S "${ROOT}" -B "${BUILD_DIR}" "${CONFIG_ARGS[@]}" >/dev/null

mapfile -t SOURCES < <(cd "${ROOT}" && find src -name '*.cpp' | sort)
if [[ "${#SOURCES[@]}" -eq 0 ]]; then
  echo "tidy.sh: no sources found under src/ — wrong checkout?" >&2
  exit 2
fi

echo "tidy.sh: scanning ${#SOURCES[@]} translation units with ${TIDY}"
FINDINGS_RAW="$(mktemp)"
trap 'rm -f "${FINDINGS_RAW}"' EXIT
STATUS=0
(cd "${ROOT}" && "${TIDY}" -p "${BUILD_DIR}" --quiet "${SOURCES[@]}" \
  >"${FINDINGS_RAW}" 2>/dev/null) || STATUS=$?

# Normalize findings to "file:line: check-name" so baseline entries are
# stable across absolute paths and message wording changes.
FINDINGS="$(sed -n -E \
  "s#^(${ROOT}/)?([^ :]+):([0-9]+):[0-9]+: (warning|error): .*\[([a-z0-9.-]+)\]\$#\2:\3: \5#p" \
  "${FINDINGS_RAW}" | sort -u)"
ACCEPTED="$(grep -v -E '^\s*(#|$)' "${BASELINE}" | sort -u || true)"
NEW="$(comm -23 <(printf '%s\n' "${FINDINGS}" | sed '/^$/d') \
                <(printf '%s\n' "${ACCEPTED}" | sed '/^$/d') || true)"

if [[ -n "${NEW}" ]]; then
  echo "tidy.sh: findings not covered by tools/tidy_baseline.txt:" >&2
  printf '%s\n' "${NEW}" >&2
  echo "tidy.sh: fix them at the source (or NOLINT with a justification" >&2
  echo "tidy.sh: comment); the baseline stays empty by policy." >&2
  exit 1
fi
if [[ "${STATUS}" -ne 0 && -z "${FINDINGS}" ]]; then
  # clang-tidy failed without producing findings (bad database, crash):
  # surface it instead of passing vacuously.
  echo "tidy.sh: ${TIDY} exited ${STATUS} with no parseable findings:" >&2
  tail -n 20 "${FINDINGS_RAW}" >&2
  exit "${STATUS}"
fi
echo "tidy.sh: clean"
