#!/usr/bin/env python3
"""Compares two Cicero run reports and flags metric regressions.

The perf gate for the bench pipeline: a fresh ``*.report.json`` (written
by a bench into ``bench/out/``) is diffed against the committed baseline
of the same name under ``bench/baselines/``, metric by metric, with a
relative threshold per metric.

Metrics are flattened into namespaced keys so one threshold table covers
every section of ``cicero-run-report/v1``::

    counter:<name>                      raw counter value
    gauge:<name>                        gauge value
    hist:<name>.count|mean              histogram population / mean
    cdf:<name>.n|p50|p99                CDF population and latency tails
    crit:<slug>.end_to_end.p50_ms       critical-path end-to-end tails
    crit:<slug>.phases.<phase>.total_ms per-phase attributed latency
    crit:<slug>.phases.<phase>.bytes    per-phase control-plane bytes
    crit:<slug>.attributed.min          attribution coverage floor
    shard:<slug>.<shard>.events|windows engine utilization counters

Wall-clock-derived metrics (``wall_sec``, ``*_per_sec``, ``peak_rss``,
``barrier_wait``, micro speedups) are machine noise and always skipped:
the gate compares *simulated* behaviour, which is deterministic.

Thresholds come from a JSON file (default: ``thresholds.json`` next to
the baseline)::

    {"default_rel": 0.25,
     "overrides": {"cdf:*.p99": 0.5, "counter:*retrans*": 1.0},
     "skip": ["gauge:*.threads"]}

``overrides`` maps fnmatch patterns over the namespaced keys to relative
thresholds; the most specific (longest) matching pattern wins.  A metric
present in the baseline but missing from the current report is always a
violation; brand-new metrics are only noted.

Usage:
    bench_diff.py CURRENT [BASELINE] [--thresholds FILE] [--soft] [-v]
    bench_diff.py --self-test

With no BASELINE, looks for ``bench/baselines/<basename(CURRENT)>``
relative to the repository root.  ``--soft`` prints GitHub Actions
``::warning::`` annotations instead of failing (CI runs the gate soft
until enough baseline history exists).  Exits 0 when clean or soft,
1 on hard violations, 2 on usage/IO errors.  Stdlib only.
"""
import fnmatch
import json
import os
import sys

# Host-dependent measurements: never compared (see module docstring).
ALWAYS_SKIP = (
    "*wall_sec*",
    "*per_sec*",
    "*rss*",
    "*barrier_wait*",
    "*speedup*",
)

DEFAULT_REL = 0.25


def flatten(doc):
    """Run report -> {namespaced key: numeric value}."""
    out = {}
    for name, v in (doc.get("counters") or {}).items():
        if isinstance(v, int):
            out["counter:%s" % name] = v
    for name, v in (doc.get("gauges") or {}).items():
        if isinstance(v, (int, float)):
            out["gauge:%s" % name] = v
    for name, h in (doc.get("histograms") or {}).items():
        if not isinstance(h, dict):
            continue
        if isinstance(h.get("count"), int):
            out["hist:%s.count" % name] = h["count"]
            if h["count"] > 0 and isinstance(h.get("sum"), (int, float)):
                out["hist:%s.mean" % name] = h["sum"] / h["count"]
    for name, c in (doc.get("cdfs") or {}).items():
        if not isinstance(c, dict):
            continue
        for field in ("n", "p50", "p99"):
            if isinstance(c.get(field), (int, float)):
                out["cdf:%s.%s" % (name, field)] = c[field]
    for slug, s in (doc.get("critical_path") or {}).items():
        if not isinstance(s, dict):
            continue
        base = "crit:%s" % slug
        if isinstance(s.get("updates"), int):
            out["%s.updates" % base] = s["updates"]
        for field in ("p50_ms", "p99_ms"):
            v = (s.get("end_to_end") or {}).get(field)
            if isinstance(v, (int, float)):
                out["%s.end_to_end.%s" % (base, field)] = v
        v = (s.get("attributed") or {}).get("min")
        if isinstance(v, (int, float)):
            out["%s.attributed.min" % base] = v
        for phase, p in (s.get("phases") or {}).items():
            if not isinstance(p, dict):
                continue
            for field in ("total_ms", "bytes"):
                if isinstance(p.get(field), (int, float)):
                    out["%s.phases.%s.%s" % (base, phase, field)] = p[field]
    for slug, rows in (doc.get("shards") or {}).items():
        if not isinstance(rows, list):
            continue
        for r in rows:
            if not isinstance(r, dict) or not isinstance(r.get("shard"), int):
                continue
            base = "shard:%s.%d" % (slug, r["shard"])
            for field in ("events", "windows", "stall_windows", "posts_in", "posts_out"):
                if isinstance(r.get(field), int):
                    out["%s.%s" % (base, field)] = r[field]
    return out


def load_thresholds(path):
    if path is None or not os.path.exists(path):
        return DEFAULT_REL, {}, []
    with open(path, "r", encoding="utf-8") as f:
        t = json.load(f)
    return (
        float(t.get("default_rel", DEFAULT_REL)),
        {str(k): float(v) for k, v in (t.get("overrides") or {}).items()},
        [str(p) for p in (t.get("skip") or [])],
    )


def threshold_for(key, default_rel, overrides):
    best, best_len = default_rel, -1
    for pattern, rel in overrides.items():
        if fnmatch.fnmatch(key, pattern) and len(pattern) > best_len:
            best, best_len = rel, len(pattern)
    return best


def diff(current, baseline, default_rel=DEFAULT_REL, overrides=None, skip=()):
    """Returns (violations, notes): lists of human-readable strings."""
    overrides = overrides or {}
    skip = tuple(ALWAYS_SKIP) + tuple(skip)
    violations, notes = [], []
    for key in sorted(set(current) | set(baseline)):
        if any(fnmatch.fnmatch(key, p) for p in skip):
            continue
        if key not in baseline:
            notes.append("new metric %s = %s (no baseline)" % (key, current[key]))
            continue
        if key not in current:
            violations.append("metric %s disappeared (baseline %s)" % (key, baseline[key]))
            continue
        base, cur = baseline[key], current[key]
        rel = threshold_for(key, default_rel, overrides)
        if base == cur:
            continue
        denom = max(abs(base), abs(cur))
        drift = abs(cur - base) / denom if denom > 0 else 0.0
        if drift > rel:
            violations.append(
                "%s: %s -> %s (%+.1f%%, threshold %.0f%%)"
                % (key, fmt(base), fmt(cur), 100.0 * (cur - base) / base
                   if base != 0 else float("inf"), 100.0 * rel))
    return violations, notes


def fmt(v):
    return "%d" % v if isinstance(v, int) else "%.4g" % v


def default_baseline(current_path):
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(here))
    return os.path.join(root, "bench", "baselines", os.path.basename(current_path))


def self_test():
    base = {
        "counters": {"a.acks": 100, "a.gone": 5},
        "gauges": {"a.wall_sec": 9.0, "a.switches": 320.0},
        "histograms": {"a.lat_ms": {"count": 10, "sum": 50.0}},
        "cdfs": {"a.completion_ms": {"n": 10, "p50": 4.0, "p99": 9.0}},
        "critical_path": {"a": {
            "updates": 10,
            "end_to_end": {"p50_ms": 4.0, "p99_ms": 9.0},
            "attributed": {"min": 1.0},
            "phases": {"sign": {"total_ms": 12.0, "bytes": 4000}},
        }},
        "shards": {"a": [{"shard": 0, "events": 1000, "windows": 5,
                          "stall_windows": 0, "posts_in": 0, "posts_out": 0,
                          "barrier_wait_sec": 0.5}]},
    }
    cur = json.loads(json.dumps(base))
    cur["gauges"]["a.wall_sec"] = 90.0            # skipped: wall clock
    cur["shards"]["a"][0]["barrier_wait_sec"] = 9  # skipped (and not flattened)
    cur["counters"]["a.acks"] = 101                # 1% drift: under threshold
    cur["counters"]["a.new"] = 7                   # new metric: note only
    v, n = diff(flatten(cur), flatten(base))
    assert v == [], v
    assert any("a.new" in x for x in n), n

    cur["cdfs"]["a.completion_ms"]["p99"] = 20.0   # 55% drift: violation
    del cur["counters"]["a.gone"]                  # disappeared: violation
    cur["critical_path"]["a"]["phases"]["sign"]["total_ms"] = 30.0
    v, _ = diff(flatten(cur), flatten(base))
    assert any("cdf:a.completion_ms.p99" in x for x in v), v
    assert any("a.gone disappeared" in x for x in v), v
    assert any("crit:a.phases.sign.total_ms" in x for x in v), v

    # A generous override pattern silences the phase violation.
    v, _ = diff(flatten(cur), flatten(base),
                overrides={"crit:*.phases.*": 2.0, "cdf:*": 2.0})
    assert not any("phases" in x or "cdf:" in x for x in v), v
    # Most specific pattern wins over a loose one.
    assert threshold_for("cdf:a.p99", 0.25, {"cdf:*": 0.1, "cdf:a.*": 0.9}) == 0.9
    print("bench_diff self-test OK")
    return 0


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("-")]
    flags = [a for a in argv[1:] if a.startswith("-")]
    if "--self-test" in flags:
        return self_test()
    soft = "--soft" in flags
    verbose = "-v" in flags or "--verbose" in flags
    thresholds_path = None
    for i, a in enumerate(argv[1:-1]):
        if a == "--thresholds":
            thresholds_path = argv[1:][i + 1]
            args = [x for x in args if x != thresholds_path]
    if not args or len(args) > 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    current_path = args[0]
    baseline_path = args[1] if len(args) == 2 else default_baseline(current_path)
    if not os.path.exists(baseline_path):
        print("bench_diff: no baseline at %s; nothing to compare" % baseline_path)
        return 0
    if thresholds_path is None:
        candidate = os.path.join(os.path.dirname(baseline_path), "thresholds.json")
        thresholds_path = candidate if os.path.exists(candidate) else None

    try:
        with open(current_path, "r", encoding="utf-8") as f:
            current = flatten(json.load(f))
        with open(baseline_path, "r", encoding="utf-8") as f:
            baseline = flatten(json.load(f))
        default_rel, overrides, skip = load_thresholds(thresholds_path)
    except (OSError, ValueError) as e:
        print("bench_diff: %s" % e, file=sys.stderr)
        return 2

    violations, notes = diff(current, baseline, default_rel, overrides, skip)
    compared = len(set(current) & set(baseline))
    print("bench_diff: %s vs %s (%d metrics compared, threshold %.0f%%)"
          % (os.path.basename(current_path), baseline_path, compared, 100 * default_rel))
    if verbose:
        for n in notes:
            print("  note: %s" % n)
    for v in violations:
        if soft:
            print("::warning title=bench-diff::%s" % v)
        else:
            print("  REGRESSION %s" % v)
    if violations and not soft:
        print("bench_diff: %d violation(s)" % len(violations))
        return 1
    print("bench_diff: OK (%d violation(s)%s, %d new metric(s))"
          % (len(violations), " soft-reported" if soft and violations else "",
             len(notes)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
