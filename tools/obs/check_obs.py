#!/usr/bin/env python3
"""Validates Cicero observability artifacts.

Two artifact kinds, auto-detected per file:

* Chrome trace-event JSON (``*.trace.json`` as written by
  ``obs::Tracer::write_chrome_trace``): object form with a ``traceEvents``
  list whose entries are ``X`` / ``i`` / ``b`` / ``e`` / ``M`` events with
  the fields Perfetto requires.

* Run reports (``*.report.json`` as written by ``obs::RunReport``):
  schema ``cicero-run-report/v1`` with consistent histogram and CDF
  shapes (``counts`` has ``len(bounds) + 1`` entries, the last being the
  overflow bucket).

Usage:  check_obs.py FILE [FILE...]
Exits non-zero (listing every problem) if any file fails; prints a
one-line summary per valid file.  Stdlib only.
"""
import json
import sys

RUN_REPORT_SCHEMA = "cicero-run-report/v1"
TRACE_PHASES = {"X", "i", "b", "e", "M"}


def fail(errors, fmt, *a):
    errors.append(fmt % a if a else fmt)


def check_trace(doc, errors):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, "traceEvents missing or not a list")
        return {}
    if not events:
        fail(errors, "traceEvents is empty")
    phases = {}
    pids = set()
    async_open = {}  # (cat, id) -> open-begin depth
    for i, ev in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(ev, dict):
            fail(errors, "%s: not an object", where)
            continue
        ph = ev.get("ph")
        if ph not in TRACE_PHASES:
            fail(errors, "%s: unexpected phase %r", where, ph)
            continue
        phases[ph] = phases.get(ph, 0) + 1
        if not isinstance(ev.get("pid"), int):
            fail(errors, "%s: pid missing or not an int", where)
        else:
            pids.add(ev["pid"])
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(errors, "%s: name missing or empty", where)
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                fail(errors, "%s: ts missing or negative (%r)", where, ts)
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            fail(errors, "%s: complete event without dur", where)
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            fail(errors, "%s: instant without scope 's'", where)
        if ph in ("b", "e"):
            if not isinstance(ev.get("cat"), str) or not isinstance(ev.get("id"), str):
                fail(errors, "%s: async event needs string cat and id", where)
            else:
                key = (ev["cat"], ev["id"])
                depth = async_open.get(key, 0) + (1 if ph == "b" else -1)
                if depth < 0:
                    fail(errors, "%s: async end without begin for %r", where, key)
                    depth = 0
                async_open[key] = depth
    open_spans = sum(d for d in async_open.values() if d > 0)
    if open_spans:
        # Not an error: a span is legitimately left open when the sim
        # horizon cuts an in-flight update.
        print("     note: %d async span(s) still open at end of trace" % open_spans)
    return {"events": len(events), "processes": len(pids), "phases": phases}


def check_report(doc, errors):
    if doc.get("schema") != RUN_REPORT_SCHEMA:
        fail(errors, "schema is %r, want %r", doc.get("schema"), RUN_REPORT_SCHEMA)
    if not isinstance(doc.get("experiment"), str) or not doc["experiment"]:
        fail(errors, "experiment missing or empty")
    for section in ("meta", "counters", "gauges", "histograms", "cdfs"):
        if not isinstance(doc.get(section), dict):
            fail(errors, "section %r missing or not an object", section)

    for name, v in (doc.get("counters") or {}).items():
        if not isinstance(v, int) or v < 0:
            fail(errors, "counter %r: not a non-negative integer (%r)", name, v)
    for name, v in (doc.get("gauges") or {}).items():
        if not isinstance(v, (int, float)) and v is not None:
            fail(errors, "gauge %r: not a number (%r)", name, v)

    for name, h in (doc.get("histograms") or {}).items():
        where = "histogram %r" % name
        if not isinstance(h, dict):
            fail(errors, "%s: not an object", where)
            continue
        bounds, counts = h.get("bounds"), h.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            fail(errors, "%s: bounds/counts missing", where)
            continue
        if len(counts) != len(bounds) + 1:
            fail(errors, "%s: len(counts)=%d, want len(bounds)+1=%d", where,
                 len(counts), len(bounds) + 1)
        if bounds != sorted(bounds):
            fail(errors, "%s: bounds not ascending", where)
        bucket_total = sum(c for c in counts if isinstance(c, int))
        if h.get("count") != bucket_total:
            fail(errors, "%s: count=%r != sum(counts)=%d", where, h.get("count"), bucket_total)

    for name, c in (doc.get("cdfs") or {}).items():
        where = "cdf %r" % name
        if not isinstance(c, dict):
            fail(errors, "%s: not an object", where)
            continue
        for field in ("unit", "n", "mean", "min", "max", "p50", "p90", "p99", "series"):
            if field not in c:
                fail(errors, "%s: missing field %r", where, field)
        series = c.get("series")
        if not isinstance(series, list) or not all(
                isinstance(p, list) and len(p) == 2 for p in series or []):
            fail(errors, "%s: series must be a list of [value, quantile] pairs", where)
        elif c.get("n", 0) > 0:
            qs = [p[1] for p in series]
            if qs != sorted(qs):
                fail(errors, "%s: quantiles not monotone", where)
            if c.get("p50", 0) > c.get("p99", 0):
                fail(errors, "%s: p50 > p99", where)
    return {
        "counters": len(doc.get("counters") or {}),
        "gauges": len(doc.get("gauges") or {}),
        "histograms": len(doc.get("histograms") or {}),
        "cdfs": len(doc.get("cdfs") or {}),
    }


def check_file(path):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return ["unreadable or invalid JSON: %s" % e], None
    if not isinstance(doc, dict):
        return ["top level is not a JSON object"], None
    if "traceEvents" in doc:
        info = check_trace(doc, errors)
        kind = "trace"
    elif "schema" in doc or "cdfs" in doc:
        info = check_report(doc, errors)
        kind = "report"
    else:
        return ["neither a trace (no traceEvents) nor a run report (no schema)"], None
    return errors, (kind, info)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors, detail = check_file(path)
        if errors:
            failed = True
            print("FAIL %s" % path)
            for e in errors:
                print("     %s" % e)
        else:
            kind, info = detail
            summary = ", ".join("%s=%s" % kv for kv in sorted(info.items()))
            print("OK   %s (%s: %s)" % (path, kind, summary))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
