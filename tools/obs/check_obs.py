#!/usr/bin/env python3
"""Validates Cicero observability artifacts.

Two artifact kinds, auto-detected per file:

* Chrome trace-event JSON (``*.trace.json`` as written by
  ``obs::Tracer::write_chrome_trace``): object form with a ``traceEvents``
  list whose entries are ``X`` / ``i`` / ``b`` / ``e`` / ``M`` duration /
  metadata events or ``s`` / ``t`` / ``f`` flow events with the fields
  Perfetto requires.  Flow events are checked for causal pairing: a flow
  finish without a preceding start on the same (cat, id) is an error;
  starts or steps left dangling (e.g. an update cut off by the sim
  horizon) are only noted.

* Run reports (``*.report.json`` as written by ``obs::RunReport``):
  schema ``cicero-run-report/v1`` with consistent histogram and CDF
  shapes (``counts`` has ``len(bounds) + 1`` entries, the last being the
  overflow bucket), plus the ``critical_path`` (seven-phase latency
  attribution) and ``shards`` (parallel-engine utilization) sections
  when present.

Usage:  check_obs.py FILE [FILE...]
        check_obs.py --self-test
Exits non-zero (listing every problem) if any file fails; prints a
one-line summary per valid file.  Stdlib only.
"""
import json
import sys

RUN_REPORT_SCHEMA = "cicero-run-report/v1"
TRACE_PHASES = {"X", "i", "b", "e", "M", "s", "t", "f"}
CRIT_PHASES = ("order", "dependency_wait", "sign", "propagate", "peer_signal",
               "apply", "retransmit")
SHARD_INT_FIELDS = ("shard", "windows", "events", "stall_windows", "posts_in", "posts_out")


def fail(errors, fmt, *a):
    errors.append(fmt % a if a else fmt)


def check_trace(doc, errors):
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(errors, "traceEvents missing or not a list")
        return {}
    if not events:
        fail(errors, "traceEvents is empty")
    phases = {}
    pids = set()
    async_open = {}  # (cat, id) -> open-begin depth
    flow_started = set()   # (cat, id) seen a start
    flow_finished = set()  # (cat, id) seen a finish
    flow_dangling = 0      # steps with no start on their track
    for i, ev in enumerate(events):
        where = "traceEvents[%d]" % i
        if not isinstance(ev, dict):
            fail(errors, "%s: not an object", where)
            continue
        ph = ev.get("ph")
        if ph not in TRACE_PHASES:
            fail(errors, "%s: unexpected phase %r", where, ph)
            continue
        phases[ph] = phases.get(ph, 0) + 1
        if not isinstance(ev.get("pid"), int):
            fail(errors, "%s: pid missing or not an int", where)
        else:
            pids.add(ev["pid"])
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(errors, "%s: name missing or empty", where)
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                fail(errors, "%s: ts missing or negative (%r)", where, ts)
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            fail(errors, "%s: complete event without dur", where)
        if ph == "i" and ev.get("s") not in ("t", "p", "g"):
            fail(errors, "%s: instant without scope 's'", where)
        if ph in ("b", "e"):
            if not isinstance(ev.get("cat"), str) or not isinstance(ev.get("id"), str):
                fail(errors, "%s: async event needs string cat and id", where)
            else:
                key = (ev["cat"], ev["id"])
                depth = async_open.get(key, 0) + (1 if ph == "b" else -1)
                if depth < 0:
                    fail(errors, "%s: async end without begin for %r", where, key)
                    depth = 0
                async_open[key] = depth
        if ph in ("s", "t", "f"):
            if not isinstance(ev.get("cat"), str) or not isinstance(ev.get("id"), str):
                fail(errors, "%s: flow event needs string cat and id", where)
                continue
            key = (ev["cat"], ev["id"])
            if ph == "s":
                flow_started.add(key)
            elif ph == "t":
                # A step may legitimately precede its start on a lossy
                # run (e.g. a resend recorded before the surviving send);
                # dangling steps are counted, not failed.
                if key not in flow_started:
                    flow_dangling += 1
            else:
                if key not in flow_started:
                    fail(errors, "%s: flow finish without start for %r", where, key)
                if ev.get("bp") not in (None, "e"):
                    fail(errors, "%s: flow finish with bad bp %r", where, ev.get("bp"))
                flow_finished.add(key)
    open_spans = sum(d for d in async_open.values() if d > 0)
    if open_spans:
        # Not an error: a span is legitimately left open when the sim
        # horizon cuts an in-flight update.
        print("     note: %d async span(s) still open at end of trace" % open_spans)
    open_flows = len(flow_started - flow_finished)
    if open_flows or flow_dangling:
        print("     note: %d flow(s) unfinished, %d dangling step(s)"
              % (open_flows, flow_dangling))
    return {"events": len(events), "processes": len(pids), "phases": phases}


def check_report(doc, errors):
    if doc.get("schema") != RUN_REPORT_SCHEMA:
        fail(errors, "schema is %r, want %r", doc.get("schema"), RUN_REPORT_SCHEMA)
    if not isinstance(doc.get("experiment"), str) or not doc["experiment"]:
        fail(errors, "experiment missing or empty")
    for section in ("meta", "counters", "gauges", "histograms", "cdfs"):
        if not isinstance(doc.get(section), dict):
            fail(errors, "section %r missing or not an object", section)

    for name, v in (doc.get("counters") or {}).items():
        if not isinstance(v, int) or v < 0:
            fail(errors, "counter %r: not a non-negative integer (%r)", name, v)
    for name, v in (doc.get("gauges") or {}).items():
        if not isinstance(v, (int, float)) and v is not None:
            fail(errors, "gauge %r: not a number (%r)", name, v)

    for name, h in (doc.get("histograms") or {}).items():
        where = "histogram %r" % name
        if not isinstance(h, dict):
            fail(errors, "%s: not an object", where)
            continue
        bounds, counts = h.get("bounds"), h.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            fail(errors, "%s: bounds/counts missing", where)
            continue
        if len(counts) != len(bounds) + 1:
            fail(errors, "%s: len(counts)=%d, want len(bounds)+1=%d", where,
                 len(counts), len(bounds) + 1)
        if bounds != sorted(bounds):
            fail(errors, "%s: bounds not ascending", where)
        bucket_total = sum(c for c in counts if isinstance(c, int))
        if h.get("count") != bucket_total:
            fail(errors, "%s: count=%r != sum(counts)=%d", where, h.get("count"), bucket_total)

    for name, c in (doc.get("cdfs") or {}).items():
        where = "cdf %r" % name
        if not isinstance(c, dict):
            fail(errors, "%s: not an object", where)
            continue
        for field in ("unit", "n", "mean", "min", "max", "p50", "p90", "p99", "series"):
            if field not in c:
                fail(errors, "%s: missing field %r", where, field)
        series = c.get("series")
        if not isinstance(series, list) or not all(
                isinstance(p, list) and len(p) == 2 for p in series or []):
            fail(errors, "%s: series must be a list of [value, quantile] pairs", where)
        elif c.get("n", 0) > 0:
            qs = [p[1] for p in series]
            if qs != sorted(qs):
                fail(errors, "%s: quantiles not monotone", where)
            if c.get("p50", 0) > c.get("p99", 0):
                fail(errors, "%s: p50 > p99", where)

    # Optional sections added by cicero-run-report/v1 revisions; older
    # artifacts without them still validate.
    crit = doc.get("critical_path")
    if crit is not None:
        if not isinstance(crit, dict):
            fail(errors, "critical_path: not an object")
        else:
            for slug, s in crit.items():
                check_critical_path(slug, s, errors)
    shards = doc.get("shards")
    if shards is not None:
        if not isinstance(shards, dict):
            fail(errors, "shards: not an object")
        else:
            for slug, rows in shards.items():
                check_shards(slug, rows, errors)
    return {
        "counters": len(doc.get("counters") or {}),
        "gauges": len(doc.get("gauges") or {}),
        "histograms": len(doc.get("histograms") or {}),
        "cdfs": len(doc.get("cdfs") or {}),
        "critical_path": len(crit or {}),
        "shards": len(shards or {}),
    }


def _is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def check_critical_path(slug, s, errors):
    where = "critical_path %r" % slug
    if not isinstance(s, dict):
        fail(errors, "%s: not an object", where)
        return
    for field in ("updates", "incomplete"):
        if not isinstance(s.get(field), int) or s.get(field, -1) < 0:
            fail(errors, "%s: %s not a non-negative integer (%r)", where, field, s.get(field))
    e2e = s.get("end_to_end")
    if not isinstance(e2e, dict) or not all(_is_num(e2e.get(f)) for f in
                                            ("total_ms", "p50_ms", "p99_ms")):
        fail(errors, "%s: end_to_end missing total_ms/p50_ms/p99_ms", where)
    attr = s.get("attributed")
    if not isinstance(attr, dict) or not all(_is_num(attr.get(f)) for f in ("min", "mean")):
        fail(errors, "%s: attributed missing min/mean", where)
    elif s.get("updates", 0) > 0:
        # The clamped-milestone attribution partitions the end-to-end
        # interval exactly; the checked floor matches the acceptance
        # criterion (>= 95 % of each completed update's latency).
        if attr["min"] < 0.95 - 1e-9 or attr["min"] > 1.0 + 1e-6:
            fail(errors, "%s: attributed.min=%r outside [0.95, 1.0]", where, attr["min"])
    ph = s.get("phases")
    if not isinstance(ph, dict) or sorted(ph) != sorted(CRIT_PHASES):
        fail(errors, "%s: phases must have exactly %s", where, list(CRIT_PHASES))
    else:
        phase_total = 0.0
        for name, p in ph.items():
            if not isinstance(p, dict) or not all(_is_num(p.get(f)) for f in
                                                  ("total_ms", "p50_ms", "p99_ms")):
                fail(errors, "%s: phase %r missing total_ms/p50_ms/p99_ms", where, name)
                continue
            if not isinstance(p.get("bytes"), int) or p["bytes"] < 0:
                fail(errors, "%s: phase %r bytes not a non-negative integer", where, name)
            if p["total_ms"] < -1e-9:
                fail(errors, "%s: phase %r negative total_ms", where, name)
            phase_total += p["total_ms"]
        e2e_total = (e2e or {}).get("total_ms")
        if _is_num(e2e_total) and e2e_total > 0:
            if abs(phase_total - e2e_total) > max(1e-3, 0.01 * e2e_total):
                fail(errors, "%s: phase totals %.3f != end_to_end %.3f", where,
                     phase_total, e2e_total)
    slowest = s.get("slowest")
    if not isinstance(slowest, list):
        fail(errors, "%s: slowest not a list", where)
    else:
        last = None
        for i, u in enumerate(slowest):
            if (not isinstance(u, dict) or not isinstance(u.get("update"), int)
                    or not _is_num(u.get("total_ms")) or not isinstance(u.get("phases"), dict)):
                fail(errors, "%s: slowest[%d] malformed", where, i)
                continue
            if last is not None and u["total_ms"] > last + 1e-9:
                fail(errors, "%s: slowest not sorted by total_ms desc", where)
            last = u["total_ms"]


def check_shards(slug, rows, errors):
    where = "shards %r" % slug
    if not isinstance(rows, list) or not rows:
        fail(errors, "%s: not a non-empty list", where)
        return
    seen = set()
    for i, r in enumerate(rows):
        if not isinstance(r, dict):
            fail(errors, "%s: row %d not an object", where, i)
            continue
        for field in SHARD_INT_FIELDS:
            if not isinstance(r.get(field), int) or r.get(field, -1) < 0:
                fail(errors, "%s: row %d field %r not a non-negative integer (%r)",
                     where, i, field, r.get(field))
        if not _is_num(r.get("barrier_wait_sec")) or r.get("barrier_wait_sec", -1) < 0:
            fail(errors, "%s: row %d barrier_wait_sec not a non-negative number", where, i)
        if isinstance(r.get("shard"), int):
            if r["shard"] in seen:
                fail(errors, "%s: duplicate shard id %d", where, r["shard"])
            seen.add(r["shard"])


def check_file(path):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return ["unreadable or invalid JSON: %s" % e], None
    if not isinstance(doc, dict):
        return ["top level is not a JSON object"], None
    if "traceEvents" in doc:
        info = check_trace(doc, errors)
        kind = "trace"
    elif "schema" in doc or "cdfs" in doc:
        info = check_report(doc, errors)
        kind = "report"
    else:
        return ["neither a trace (no traceEvents) nor a run report (no schema)"], None
    return errors, (kind, info)


def _crit_section(**overrides):
    s = {
        "updates": 2, "incomplete": 0,
        "end_to_end": {"total_ms": 60.0, "p50_ms": 30.0, "p99_ms": 30.0},
        "attributed": {"min": 1.0, "mean": 1.0},
        "phases": {name: {"total_ms": 10.0 if name == "order" else
                          (50.0 if name == "propagate" else 0.0),
                          "p50_ms": 0.0, "p99_ms": 0.0, "bytes": 0}
                   for name in CRIT_PHASES},
        "slowest": [{"update": 1, "total_ms": 30.0, "phases": {}},
                    {"update": 2, "total_ms": 30.0, "phases": {}}],
    }
    s.update(overrides)
    return s


def self_test():
    """Exercises the section validators on synthetic documents."""
    def errs_of(check, *a):
        errors = []
        check(*a, errors)
        return errors

    # Good critical_path: exact partition, full attribution, sorted slowest.
    assert errs_of(check_critical_path, "ok", _crit_section()) == []
    # Violations the validator must catch.
    bad = [
        _crit_section(attributed={"min": 0.5, "mean": 0.9}),       # under floor
        _crit_section(phases={}),                                  # wrong phase set
        _crit_section(end_to_end={"total_ms": 120.0, "p50_ms": 1.0,
                                  "p99_ms": 1.0}),                 # partition broken
        _crit_section(slowest=[{"update": 1, "total_ms": 5.0, "phases": {}},
                               {"update": 2, "total_ms": 9.0, "phases": {}}]),
    ]
    for i, s in enumerate(bad):
        assert errs_of(check_critical_path, "bad%d" % i, s), "bad case %d passed" % i

    good_row = {"shard": 0, "windows": 3, "events": 10, "stall_windows": 1,
                "posts_in": 2, "posts_out": 2, "barrier_wait_sec": 0.01}
    assert errs_of(check_shards, "ok", [good_row]) == []
    assert errs_of(check_shards, "dup", [good_row, dict(good_row)])      # dup id
    assert errs_of(check_shards, "neg", [dict(good_row, events=-1)])     # negative
    assert errs_of(check_shards, "empty", [])                            # empty

    # Flow pairing: finish-without-start is an error, dangling step is not.
    flow = lambda ph, **kw: dict({"ph": ph, "pid": 0, "tid": 0, "ts": 1.0,
                                  "name": "n", "cat": "flow", "id": "u:1"}, **kw)
    ok_trace = {"traceEvents": [flow("s"), flow("t"), flow("f", bp="e")]}
    assert errs_of(check_trace, ok_trace) == []
    orphan_finish = {"traceEvents": [flow("f")]}
    assert errs_of(check_trace, orphan_finish)
    dangling_step = {"traceEvents": [flow("t")]}
    assert errs_of(check_trace, dangling_step) == []

    print("check_obs self-test OK")
    return 0


def main(argv):
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        errors, detail = check_file(path)
        if errors:
            failed = True
            print("FAIL %s" % path)
            for e in errors:
                print("     %s" % e)
        else:
            kind, info = detail
            summary = ", ".join("%s=%s" % kv for kv in sorted(info.items()))
            print("OK   %s (%s: %s)" % (path, kind, summary))
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
