#!/usr/bin/env python3
"""Soft line-coverage floor over a gcovr JSON report.

Usage:
    coverage_floor.py coverage.json --floor src/sched=80 --floor src/sim=75

Aggregates gcovr's per-file line counts under each requested directory
prefix and prints a table.  Floors are SOFT by default: a shortfall prints
a prominent warning (and is visible in the uploaded artifact) without
failing the job, so coverage trends gate reviews rather than merges.
Pass --hard to turn shortfalls into a non-zero exit instead.
"""

import argparse
import json
import sys


def parse_floor(spec: str):
    prefix, _, pct = spec.partition("=")
    if not pct:
        raise argparse.ArgumentTypeError(f"floor must be <prefix>=<percent>: {spec!r}")
    return prefix.rstrip("/"), float(pct)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("report", help="gcovr --json output")
    ap.add_argument("--floor", action="append", type=parse_floor, default=[],
                    metavar="PREFIX=PCT", help="line-coverage floor for a directory prefix")
    ap.add_argument("--hard", action="store_true",
                    help="exit non-zero on shortfall (default: warn only)")
    ap.add_argument("--suggest-margin", type=float, default=None, metavar="PCT",
                    help="also print ratchet suggestions: actual minus PCT, "
                         "rounded down to an integer, per floored prefix")
    args = ap.parse_args()

    with open(args.report, encoding="utf-8") as f:
        data = json.load(f)

    totals = {prefix: [0, 0] for prefix, _ in args.floor}  # covered, total
    for entry in data.get("files", []):
        name = entry.get("file", "")
        for prefix in totals:
            if not name.startswith(prefix + "/") and name != prefix:
                continue
            for line in entry.get("lines", []):
                if line.get("gcovr/noncode", False):
                    continue
                totals[prefix][1] += 1
                if line.get("count", 0) > 0:
                    totals[prefix][0] += 1

    shortfalls = []
    floors = dict(args.floor)
    print(f"{'prefix':<16} {'lines':>8} {'covered':>8} {'pct':>7} {'floor':>7}")
    for prefix, (covered, total) in totals.items():
        pct = 100.0 * covered / total if total else 0.0
        floor = floors[prefix]
        print(f"{prefix:<16} {total:>8} {covered:>8} {pct:>6.1f}% {floor:>6.1f}%")
        if total == 0:
            shortfalls.append(f"{prefix}: no lines matched (path mismatch?)")
        elif pct < floor:
            shortfalls.append(f"{prefix}: {pct:.1f}% < floor {floor:.1f}%")
        if args.suggest_margin is not None and total > 0:
            suggested = max(0, int(pct - args.suggest_margin))
            print(f"  ratchet suggestion: --floor {prefix}={suggested}")

    if shortfalls:
        for s in shortfalls:
            print(f"WARNING: coverage floor shortfall — {s}", file=sys.stderr)
        if args.hard:
            return 1
    else:
        print("coverage floors satisfied")
    return 0


if __name__ == "__main__":
    sys.exit(main())
