#!/usr/bin/env python3
"""ct-lint: constant-time / secret-taint static checks for the Cicero tree.

Registered as a ctest (`ctlint`), wired into scripts/lint.sh and CI.  The
C++ type system (ct::Secret<T>) already turns secret-dependent branches,
comparisons, and indexing into compile errors; this linter covers the
policy surface the type system cannot see:

  banned-fn            libc randomness (rand/srand/random/...) anywhere in
                       src/ — all randomness must come through Drbg.
  memcmp-in-crypto     memcmp/strcmp/strncmp inside src/crypto — byte
                       comparisons on key material must use ct::ct_eq.
  secret-branch        `declassify()` inside an if/while/switch condition
                       or ternary — unwrapping a secret straight into
                       control flow defeats the whole discipline.
  secret-mod           `%` applied to a freshly declassified value —
                       hardware division is variable-time.
  declassify-scope     `declassify()` outside src/crypto/ or tests/ —
                       secrets may only be unwrapped next to the ct
                       kernels, not in protocol or application layers.
  missing-wipe         key-material translation units that are required to
                       call util::secure_wipe but don't.

Suppressions: a line (or its predecessor) containing `ctlint-allow:` is
exempt; the text after the colon should name the rule and justify it.

Usage:
  ctlint.py [--root DIR]     lint the tree, exit 1 on violations
  ctlint.py --self-test      run the linter against tools/ctlint/fixtures
                             and verify it fires (and stays quiet) exactly
                             where expected
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_GLOBS = ("*.cpp", "*.hpp", "*.cc", "*.h")

# Files whose destructors guard key material: each MUST reference
# util::secure_wipe somewhere (the wipe-on-destroy contract).
WIPE_REQUIRED = (
    "src/crypto/ct.hpp",
    "src/crypto/drbg.cpp",
    "src/crypto/shamir.cpp",
    "src/crypto/dkg.cpp",
    "src/crypto/schnorr.cpp",
)

# Free-function calls only: `Polynomial::random(...)`, `obj.random(...)`,
# and `p->random(...)` are in-repo APIs, not libc.  libc random() is
# nullary, so only its empty-argument form is banned (the repo declares
# its own `random(args...)` factories).
BANNED_FN_RE = re.compile(
    r"(?<!::)(?<!\.)(?<!->)\b(?:(?:rand|srand|drand48|lrand48|rand_r)\s*\(|random\s*\(\s*\))")
MEMCMP_RE = re.compile(r"\b(memcmp|strcmp|strncmp)\s*\(")
DECLASSIFY_RE = re.compile(r"\bdeclassify\s*\(")
BRANCH_HEAD_RE = re.compile(r"\b(if|while|switch)\s*\(")
ALLOW_MARK = "ctlint-allow:"


class Violation:
    def __init__(self, path: str, line: int, rule: str, text: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.text = text

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.text}"


def strip_noise(line: str) -> str:
    """Removes string/char literals and // comments so regexes don't match
    inside them.  (Block comments are handled a line at a time upstream.)"""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//", 1)[0]


def allowed(lines: list[str], idx: int) -> bool:
    """True if line idx (0-based) carries or follows a ctlint-allow marker."""
    if ALLOW_MARK in lines[idx]:
        return True
    # Walk back over an immediately preceding comment block.
    j = idx - 1
    while j >= 0 and lines[j].lstrip().startswith("//"):
        if ALLOW_MARK in lines[j]:
            return True
        j -= 1
    return False


def branch_spans(lines: list[str]) -> list[tuple[int, int, str]]:
    """Yields (start, end, condition_text) for each if/while/switch
    condition, following multi-line conditions by paren balance."""
    spans = []
    for i, raw in enumerate(lines):
        clean = strip_noise(raw)
        m = BRANCH_HEAD_RE.search(clean)
        if not m:
            continue
        depth = 0
        cond: list[str] = []
        j = i
        pos = m.end() - 1  # at the opening paren
        while j < len(lines):
            seg = strip_noise(lines[j])[pos:] if j == i else strip_noise(lines[j])
            for k, ch in enumerate(seg):
                if ch == "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                    if depth == 0:
                        cond.append(seg[: k + 1])
                        spans.append((i, j, " ".join(cond)))
                        break
            else:
                cond.append(seg)
                j += 1
                pos = 0
                continue
            break
    return spans


def lint_file(path: Path, rel: str, out: list[Violation]) -> None:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        out.append(Violation(rel, 0, "io-error", str(e)))
        return
    lines = text.splitlines()
    in_crypto = rel.startswith("src/crypto/")
    in_tests = rel.startswith("tests/") or rel.startswith("tools/ctlint/fixtures/")

    for i, raw in enumerate(lines):
        clean = strip_noise(raw)
        lineno = i + 1
        if BANNED_FN_RE.search(clean) and not allowed(lines, i):
            out.append(
                Violation(rel, lineno, "banned-fn",
                          "libc randomness is banned; use crypto::Drbg"))
        if in_crypto and MEMCMP_RE.search(clean) and not allowed(lines, i):
            out.append(
                Violation(rel, lineno, "memcmp-in-crypto",
                          "variable-time byte compare; use ct::ct_eq"))
        if DECLASSIFY_RE.search(clean):
            if not (in_crypto or in_tests) and not allowed(lines, i):
                out.append(
                    Violation(rel, lineno, "declassify-scope",
                              "declassify() is only permitted under src/crypto/ "
                              "and tests/"))
            # `%` in the same expression as a declassify: variable-time mod.
            after = clean[DECLASSIFY_RE.search(clean).end():]
            if re.search(r"%(?![=%])", after) and not allowed(lines, i):
                out.append(
                    Violation(rel, lineno, "secret-mod",
                              "variable-time % on a declassified value"))

    for start, end, cond in branch_spans(lines):
        if DECLASSIFY_RE.search(cond):
            if any(allowed(lines, k) for k in range(start, end + 1)):
                continue
            out.append(
                Violation(rel, start + 1, "secret-branch",
                          "declassify() inside a branch condition — secret-"
                          "dependent control flow"))
    # Ternary on a declassified value: `declassify() ... ?` on one line.
    for i, raw in enumerate(lines):
        clean = strip_noise(raw)
        m = DECLASSIFY_RE.search(clean)
        if m and "?" in clean[m.end():] and ":" in clean[m.end():]:
            if not allowed(lines, i):
                out.append(
                    Violation(rel, i + 1, "secret-branch",
                              "declassify() feeding a ternary — secret-"
                              "dependent control flow"))


def lint_tree(root: Path) -> list[Violation]:
    out: list[Violation] = []
    for top in ("src", "tests"):
        base = root / top
        if not base.is_dir():
            continue
        for glob in SOURCE_GLOBS:
            for path in sorted(base.rglob(glob)):
                lint_file(path, path.relative_to(root).as_posix(), out)
    for rel in WIPE_REQUIRED:
        path = root / rel
        if not path.is_file():
            out.append(Violation(rel, 0, "missing-wipe", "required file not found"))
        elif "secure_wipe" not in path.read_text(encoding="utf-8", errors="replace"):
            out.append(
                Violation(rel, 0, "missing-wipe",
                          "key-material file never calls util::secure_wipe"))
    return out


def self_test(root: Path) -> int:
    fixtures = Path(__file__).resolve().parent / "fixtures"
    failures = 0

    def check(name: str, expected_rules: set[str]) -> None:
        nonlocal failures
        out: list[Violation] = []
        rel = f"tools/ctlint/fixtures/{name}"
        lint_file(fixtures / name, rel, out)
        got = {v.rule for v in out}
        if got != expected_rules:
            failures += 1
            print(f"SELF-TEST FAIL {name}: expected rules {sorted(expected_rules)}, "
                  f"got {sorted(got)}")
            for v in out:
                print(f"  {v}")
        else:
            print(f"self-test ok: {name} -> {sorted(got) or '[clean]'}")

    # The bad fixture is scanned as if it lived in src/crypto so the
    # crypto-only rules apply to it.
    out: list[Violation] = []
    lint_file(fixtures / "bad_secret_branch.cpp", "src/crypto/bad_secret_branch.cpp", out)
    got = {v.rule for v in out}
    want = {"secret-branch", "banned-fn", "memcmp-in-crypto", "secret-mod"}
    if got != want:
        failures += 1
        print(f"SELF-TEST FAIL bad_secret_branch.cpp (as src/crypto): "
              f"expected {sorted(want)}, got {sorted(got)}")
        for v in out:
            print(f"  {v}")
    else:
        print(f"self-test ok: bad_secret_branch.cpp -> {sorted(got)}")

    # The same bad fixture outside src/crypto additionally trips the
    # declassify scope rule (and drops the crypto-only memcmp rule).
    out = []
    lint_file(fixtures / "bad_secret_branch.cpp", "src/core/bad_secret_branch.cpp", out)
    got = {v.rule for v in out}
    want = {"secret-branch", "banned-fn", "secret-mod", "declassify-scope"}
    if got != want:
        failures += 1
        print(f"SELF-TEST FAIL bad_secret_branch.cpp (as src/core): "
              f"expected {sorted(want)}, got {sorted(got)}")
    else:
        print(f"self-test ok: bad_secret_branch.cpp (as src/core) -> {sorted(got)}")

    check("good_usage.cpp", set())

    if failures == 0:
        print("ctlint self-test: all fixtures behaved as expected")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=Path, default=Path(__file__).resolve().parents[2],
                    help="repository root (default: two levels above this script)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the bundled fixtures and check expected findings")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.root)

    violations = lint_tree(args.root)
    if violations:
        for v in violations:
            print(v)
        print(f"ctlint: {len(violations)} violation(s)")
        return 1
    print("ctlint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
