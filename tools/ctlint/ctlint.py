#!/usr/bin/env python3
"""ct-lint: constant-time / secret-taint static checks for the Cicero tree.

Registered as a ctest (`ctlint`), wired into scripts/lint.sh and CI.  The
C++ type system (ct::Secret<T>) already turns secret-dependent branches,
comparisons, and indexing into compile errors; this linter covers the
policy surface the type system cannot see:

  banned-fn            libc randomness (rand/srand/random/...) anywhere in
                       src/ — all randomness must come through Drbg.
  memcmp-in-crypto     memcmp/strcmp/strncmp inside src/crypto — byte
                       comparisons on key material must use ct::ct_eq.
  secret-branch        `declassify()` inside an if/while/switch condition
                       or ternary — unwrapping a secret straight into
                       control flow defeats the whole discipline.
  secret-mod           `%` applied to a freshly declassified value —
                       hardware division is variable-time.
  declassify-scope     `declassify()` outside src/crypto/ or tests/ —
                       secrets may only be unwrapped next to the ct
                       kernels, not in protocol or application layers.
  missing-wipe         key-material translation units that are required to
                       call util::secure_wipe but don't.

Suppressions: a line (or its predecessor) containing `ctlint-allow:` is
exempt; the text after the colon should name the rule and justify it.

The file walking, suppression parsing and fixture self-test harness live
in tools/lintlib.py, shared with simlint (the determinism / shard-safety
linter).

Usage:
  ctlint.py [--root DIR]     lint the tree, exit 1 on violations
  ctlint.py --self-test      run the linter against tools/ctlint/fixtures
                             and verify it fires (and stays quiet) exactly
                             where expected
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
import lintlib  # noqa: E402
from lintlib import Violation, allowed, strip_noise  # noqa: E402

ALLOW_MARK = "ctlint-allow:"

# Files whose destructors guard key material: each MUST reference
# util::secure_wipe somewhere (the wipe-on-destroy contract).
WIPE_REQUIRED = (
    "src/crypto/ct.hpp",
    "src/crypto/drbg.cpp",
    "src/crypto/shamir.cpp",
    "src/crypto/dkg.cpp",
    "src/crypto/schnorr.cpp",
)

# Free-function calls only: `Polynomial::random(...)`, `obj.random(...)`,
# and `p->random(...)` are in-repo APIs, not libc.  libc random() is
# nullary, so only its empty-argument form is banned (the repo declares
# its own `random(args...)` factories).
BANNED_FN_RE = re.compile(
    r"(?<!::)(?<!\.)(?<!->)\b(?:(?:rand|srand|drand48|lrand48|rand_r)\s*\(|random\s*\(\s*\))")
MEMCMP_RE = re.compile(r"\b(memcmp|strcmp|strncmp)\s*\(")
DECLASSIFY_RE = re.compile(r"\bdeclassify\s*\(")
BRANCH_HEAD_RE = re.compile(r"\b(if|while|switch)\s*\(")


def ct_allowed(lines: list[str], idx: int) -> bool:
    return allowed(lines, idx, ALLOW_MARK)


def branch_spans(lines: list[str]) -> list[tuple[int, int, str]]:
    """Yields (start, end, condition_text) for each if/while/switch
    condition, following multi-line conditions by paren balance."""
    spans = []
    for i, raw in enumerate(lines):
        clean = strip_noise(raw)
        m = BRANCH_HEAD_RE.search(clean)
        if not m:
            continue
        depth = 0
        cond: list[str] = []
        j = i
        pos = m.end() - 1  # at the opening paren
        while j < len(lines):
            seg = strip_noise(lines[j])[pos:] if j == i else strip_noise(lines[j])
            for k, ch in enumerate(seg):
                if ch == "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                    if depth == 0:
                        cond.append(seg[: k + 1])
                        spans.append((i, j, " ".join(cond)))
                        break
            else:
                cond.append(seg)
                j += 1
                pos = 0
                continue
            break
    return spans


def lint_file(path: Path, rel: str, out: list[Violation]) -> None:
    try:
        lines = lintlib.read_lines(path)
    except OSError as e:
        out.append(Violation(rel, 0, "io-error", str(e)))
        return
    in_crypto = rel.startswith("src/crypto/")
    in_tests = rel.startswith("tests/") or rel.startswith("tools/ctlint/fixtures/")

    for i, raw in enumerate(lines):
        clean = strip_noise(raw)
        lineno = i + 1
        if BANNED_FN_RE.search(clean) and not ct_allowed(lines, i):
            out.append(
                Violation(rel, lineno, "banned-fn",
                          "libc randomness is banned; use crypto::Drbg"))
        if in_crypto and MEMCMP_RE.search(clean) and not ct_allowed(lines, i):
            out.append(
                Violation(rel, lineno, "memcmp-in-crypto",
                          "variable-time byte compare; use ct::ct_eq"))
        if DECLASSIFY_RE.search(clean):
            if not (in_crypto or in_tests) and not ct_allowed(lines, i):
                out.append(
                    Violation(rel, lineno, "declassify-scope",
                              "declassify() is only permitted under src/crypto/ "
                              "and tests/"))
            # `%` in the same expression as a declassify: variable-time mod.
            after = clean[DECLASSIFY_RE.search(clean).end():]
            if re.search(r"%(?![=%])", after) and not ct_allowed(lines, i):
                out.append(
                    Violation(rel, lineno, "secret-mod",
                              "variable-time % on a declassified value"))

    for start, end, cond in branch_spans(lines):
        if DECLASSIFY_RE.search(cond):
            if any(ct_allowed(lines, k) for k in range(start, end + 1)):
                continue
            out.append(
                Violation(rel, start + 1, "secret-branch",
                          "declassify() inside a branch condition — secret-"
                          "dependent control flow"))
    # Ternary on a declassified value: `declassify() ... ?` on one line.
    for i, raw in enumerate(lines):
        clean = strip_noise(raw)
        m = DECLASSIFY_RE.search(clean)
        if m and "?" in clean[m.end():] and ":" in clean[m.end():]:
            if not ct_allowed(lines, i):
                out.append(
                    Violation(rel, i + 1, "secret-branch",
                              "declassify() feeding a ternary — secret-"
                              "dependent control flow"))


def lint_tree(root: Path) -> list[Violation]:
    out: list[Violation] = []
    for path, rel in lintlib.iter_source_files(root, ("src", "tests")):
        lint_file(path, rel, out)
    for rel in WIPE_REQUIRED:
        path = root / rel
        if not path.is_file():
            out.append(Violation(rel, 0, "missing-wipe", "required file not found"))
        elif "secure_wipe" not in path.read_text(encoding="utf-8", errors="replace"):
            out.append(
                Violation(rel, 0, "missing-wipe",
                          "key-material file never calls util::secure_wipe"))
    return out


# The bad fixture is scanned once as if it lived in src/crypto (the
# crypto-only rules apply) and once as src/core (the declassify scope rule
# fires instead of the crypto-only memcmp rule).
SELF_TEST_CASES = (
    lintlib.SelfTestCase("bad_secret_branch.cpp", "src/crypto/bad_secret_branch.cpp",
                         {"secret-branch", "banned-fn", "memcmp-in-crypto", "secret-mod"}),
    lintlib.SelfTestCase("bad_secret_branch.cpp", "src/core/bad_secret_branch.cpp",
                         {"secret-branch", "banned-fn", "secret-mod", "declassify-scope"}),
    lintlib.SelfTestCase("good_usage.cpp", "tools/ctlint/fixtures/good_usage.cpp", set()),
)


def self_test(_root: Path) -> int:
    fixtures = Path(__file__).resolve().parent / "fixtures"
    return lintlib.run_self_test("ctlint", fixtures, SELF_TEST_CASES, lint_file)


if __name__ == "__main__":
    sys.exit(lintlib.main("ctlint", __doc__, lint_tree, self_test,
                          Path(__file__).resolve().parents[2]))
