// ctlint self-test fixture: everything in here is policy-compliant and the
// linter must stay quiet (fixtures are scanned with test-tree scoping, so
// declassify() itself is permitted; only its misuse patterns fire).
namespace fixture {

int straight_line_declassify(const SecretScalar& k) {
  // Fine: declassified into data flow, not control flow.
  const Scalar v = k.declassify();
  return use(v);
}

int suppressed_branch(const SecretScalar& k) {
  // ctlint-allow: secret-branch (rejection sampling, reveals only k == 0)
  if (k.declassify().is_zero()) {
    return 1;
  }
  return 0;
}

bool ct_compare(const unsigned char* a, const unsigned char* b) {
  // Fine: the constant-time comparison primitive, not memcmp.
  return ct::ct_eq(a, b, 32);
}

int drbg_randomness(Drbg& drbg) {
  // Fine: all randomness flows through the Drbg.
  return use(drbg.next_scalar());
}

}  // namespace fixture
