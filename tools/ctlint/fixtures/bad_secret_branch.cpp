// ctlint self-test fixture: every construct in here must be flagged.
// This file is never compiled; it exists so the linter's failure modes are
// themselves under test (a linter that never fires is worse than none).
#include <cstring>

namespace fixture {

int secret_dependent_branch(const SecretScalar& k) {
  // secret-branch: declassify straight into control flow.
  if (k.declassify().is_zero()) {
    return 1;
  }
  // secret-branch: multi-line condition must also be caught.
  while (k.declassify()
             .is_zero()) {
    break;
  }
  return 0;
}

int banned_randomness() {
  // banned-fn: libc randomness bypasses the Drbg.
  return rand();
}

bool keybytes_compare(const unsigned char* a, const unsigned char* b) {
  // memcmp-in-crypto: early-exit comparison on key bytes.
  return memcmp(a, b, 32) == 0;
}

unsigned variable_time_mod(const SecretScalar& k) {
  // secret-mod: hardware division is variable-time.
  return k.declassify().low_word() % 7;
}

}  // namespace fixture
