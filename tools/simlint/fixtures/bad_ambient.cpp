// simlint self-test fixture: every ambient-nondeterminism pattern the
// linter must catch.  Scanned as if it lived under src/sim/.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace cicero::sim {

unsigned bad_entropy() {
  std::random_device rd;  // OS entropy: fires ambient-nondet
  return rd();
}

long bad_wall_clock() {
  return time(nullptr);  // libc wall clock: fires ambient-nondet
}

long bad_cpu_clock() {
  return clock();  // process CPU clock: fires ambient-nondet
}

double bad_chrono() {
  const auto t = std::chrono::steady_clock::now();  // fires ambient-nondet
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

const char* bad_env() {
  return std::getenv("CICERO_ANYTHING");  // fires ambient-nondet
}

}  // namespace cicero::sim
