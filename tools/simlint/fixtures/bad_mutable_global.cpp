// simlint self-test fixture: unsynchronized static mutable state in the
// shard-safety surface.  Scanned once as src/sim/ (must fire) and once as
// src/obs/ (out of the mutable-global scope, must stay quiet).
#include <cstdint>
#include <vector>

namespace cicero::sim {

static std::uint64_t g_events_seen = 0;           // fires mutable-global
thread_local std::uint64_t t_scratch_bytes = 0;   // fires mutable-global

std::uint64_t bump() {
  static std::vector<int> g_history;              // fires mutable-global
  g_history.push_back(1);
  t_scratch_bytes += 1;
  return ++g_events_seen;
}

}  // namespace cicero::sim
