// simlint self-test fixture: the blessed patterns for every rule — this
// file must scan clean as src/sim/good_usage.cpp (all rules in scope).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/flat_hash.hpp"

namespace cicero::sim {

struct Collector {
  util::FlatHashMap<std::uint64_t, double> weights_;

  void emit(std::uint64_t id);

  void collect_then_sort() {
    // Collect-then-sort: the iteration only gathers entries and the
    // order is fixed before anything acts on them.
    std::vector<std::uint64_t> ids;
    for (const auto& [id, w] : weights_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const std::uint64_t id : ids) emit(id);
  }

  void justified_fold() {
    double total = 0.0;
    // simlint-ordered: order-insensitive fold (commutative integer-free
    // sum is not emitted per-entry; only the total is observed).
    weights_.for_each([&total](std::uint64_t, double w) { total += w; });
    (void)total;
  }
};

// Atomic, shard-striped and mutex-guarded statics are the blessed forms
// of shared state on the parallel surface.
static std::atomic<std::uint64_t> g_ops{0};
struct alignas(64) Stripe {
  std::uint64_t count = 0;
};
static alignas(64) Stripe g_stripes[4];
static std::mutex g_table_mu;
static constexpr std::uint64_t kWindow = 64;

const char* config_load() {
  // simlint-allow: ambient-nondet — one-time config load at startup,
  // never read on a simulation path.
  return std::getenv("CICERO_EXAMPLE_KNOB");
}

std::uint64_t bump() { return g_ops.fetch_add(1) & kWindow; }

}  // namespace cicero::sim
