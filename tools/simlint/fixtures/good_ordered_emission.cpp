// simlint self-test fixture: the blessed emission patterns — trace and
// report output fed from hash containers only through a sorted copy, or
// behind an explicit allow.  Must scan clean as src/core/.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/flat_hash.hpp"

namespace cicero::core {

struct FlowReporter {
  util::FlatHashMap<std::uint64_t, std::uint64_t> in_flight_;
  obs::Tracer trace;

  void collect_sort_emit() {
    // Collect-then-sort: the hash iteration only gathers ids; emission
    // happens from the sorted copy, independent of table placement.
    std::vector<std::uint64_t> ids;
    for (const auto& [id, ts] : in_flight_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (const std::uint64_t id : ids) {
      trace.flow_step("flow", "u:" + std::to_string(id), "update.sweep", 0, 0);
    }
  }

  void allowed_diagnostic() {
    // simlint-allow: unordered-emission — debug-only dump behind a flag
    // that never runs in recorded sessions; order is cosmetic here.
    for (const auto& [id, ts] : in_flight_) {
      trace.instant(0, 0, "debug.in_flight");
    }
  }
};

}  // namespace cicero::core
