// simlint self-test fixture: hash-order iteration in an event-emitting
// translation unit.  Scanned once as src/sched/ (must fire) and once as
// src/crypto/ (leaf library, must stay quiet).
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/flat_hash.hpp"

namespace cicero::sched {

struct Emitter {
  util::FlatHashMap<std::uint64_t, std::uint64_t> pending_;
  std::unordered_map<std::uint64_t, double> weights_;

  void emit(std::uint64_t id);

  void bad_range_for() {
    // Emission order depends on table placement: fires unordered-iter.
    for (const auto& [id, w] : weights_) {
      emit(id);
    }
  }

  void bad_for_each() {
    // Same hazard through the flat-hash visitation API.
    pending_.for_each([this](std::uint64_t id, std::uint64_t) { emit(id); });
  }
};

}  // namespace cicero::sched
