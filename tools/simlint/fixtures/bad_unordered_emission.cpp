// simlint self-test fixture: a trace emission fed straight from a
// hash-container iteration.  The loop carries a simlint-ordered:
// justification, which silences unordered-iter but must NOT silence
// unordered-emission — trace bytes are ordered artifact output, so an
// order-insensitivity claim does not apply.  Scanned as src/core/;
// expects exactly {unordered-emission}.
#include <cstdint>
#include <string>

#include "obs/trace.hpp"
#include "util/flat_hash.hpp"

namespace cicero::core {

struct FlowEmitter {
  util::FlatHashMap<std::uint64_t, std::uint64_t> in_flight_;
  obs::Tracer trace;

  void bad_emit_in_loop() {
    // simlint-ordered: per-entry work is independent (but the trace
    // events below still land in hash order — the emission rule fires).
    for (const auto& [id, ts] : in_flight_) {
      trace.flow_step("flow", "u:" + std::to_string(id), "update.sweep", 0, 0);
    }
  }
};

}  // namespace cicero::core
