// simlint self-test fixture: address-keyed containers and address-based
// ordering.  Scanned as if it lived under src/core/.
#include <map>
#include <set>
#include <unordered_map>

#include "util/flat_hash.hpp"

namespace cicero::core {

struct Node;

struct BadIndexes {
  // Placement follows the allocator's addresses: fires pointer-key.
  util::FlatHashMap<Node*, int> by_node_;
  std::unordered_map<const Node*, double> weights_;
  // Tree order follows addresses too — iteration order varies per run.
  std::set<Node*> members_;
  std::map<const Node*, int, std::less<const Node*>> ranked_;
};

}  // namespace cicero::core
