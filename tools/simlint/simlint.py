#!/usr/bin/env python3
"""sim-lint: determinism / shard-safety static checks for the Cicero tree.

Registered as a ctest (`simlint`), wired into scripts/lint.sh and the CI
`analyze` job.  The parallel simulation core (DESIGN.md §12) promises
that an N-thread run is a bit-identical pure function of its inputs; the
dynamic proofs (N-vs-1 equivalence, the seed sweep, the hash-salt sweep,
TSan) can only catch a violation a test happens to execute.  This linter
turns the determinism contract into a CI-time guarantee (DESIGN.md §13):

  ambient-nondet       wall-clock / OS-entropy reads anywhere in src/ —
                       std::random_device, libc rand*/time()/clock(),
                       std::chrono::{system,steady,high_resolution}_clock
                       ::now, and getenv outside one-time config load.
                       Sim time comes from Simulator::now(); randomness
                       from the seeded util::Rng / crypto::Drbg streams.
  unordered-iter       iteration (range-for or .for_each) over a hash
                       container — FlatHashMap/FlatHashSet or
                       std::unordered_* — in a translation unit that can
                       schedule events, send messages or emit
                       traces/metrics (everything under src/ except the
                       crypto and util leaf libraries).  Hash-order
                       iteration feeding an emitting path makes run
                       output a function of table placement (and breaks
                       the CICERO_HASH_SALT sweep).  Escape hatches: sort
                       within the next few lines (collect-then-sort), or
                       a reviewed `simlint-ordered:` justification.
  unordered-emission   a trace/report emission call reached directly from
                       a hash-container iteration (within the loop window,
                       before any sort).  Stricter than unordered-iter:
                       artifact bytes (trace events, report sections) must
                       be placement-independent, so a `simlint-ordered:`
                       order-insensitivity claim does NOT absolve the
                       site — emit from a sorted copy, or carry an
                       explicit `simlint-allow: unordered-emission`.
  pointer-key          pointer-keyed containers or std::less<T*> —
                       address-based placement/ordering differs run to
                       run under ASLR, so anything iterated or compared
                       through it is nondeterministic.
  mutable-global       namespace-scope / static-storage mutable state in
                       src/sim + src/core that is neither std::atomic,
                       shard-striped (alignas(64)), nor mutex-guarded —
                       unsynchronized cross-shard state is a data race in
                       parallel runs and a hidden input in sequential
                       ones.

Suppressions: a line (or the comment block immediately above) containing
`simlint-allow:` is exempt; the text after the colon must name the rule
and justify the exception.  `simlint-ordered:` is the dedicated
justification marker for unordered-iter sites whose order provably does
not matter (e.g. building an order-insensitive index).

The file walking, suppression parsing and fixture self-test harness live
in tools/lintlib.py, shared with ctlint.

Usage:
  simlint.py [--root DIR]    lint the tree, exit 1 on violations
  simlint.py --self-test     run the linter against tools/simlint/fixtures
                             and verify it fires (and stays quiet) exactly
                             where expected
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
import lintlib  # noqa: E402
from lintlib import Violation, allowed, strip_noise  # noqa: E402

ALLOW_MARK = "simlint-allow:"
ORDERED_MARK = "simlint-ordered:"

# Translation units that can schedule events, send messages or emit
# traces/metrics.  crypto/ and util/ are leaf libraries with none of
# those APIs; every other src/ directory links against the simulator,
# the network, or the observability layer.
EVENT_DIRS = ("src/sim/", "src/core/", "src/sched/", "src/net/", "src/bft/",
              "src/obs/", "src/workload/")

# Directories where shared mutable state is a shard-safety hazard (the
# code the parallel engine runs concurrently).
SHARD_STATE_DIRS = ("src/sim/", "src/core/")

# --- ambient-nondet patterns -------------------------------------------
# The word boundary is guarded against member access (`.time(`,
# `->now(`), qualification (`sim::time`) and identifier suffixes
# (`next_time(`), so only the libc / std free calls match.
RANDOM_DEVICE_RE = re.compile(r"\brandom_device\b")
LIBC_RAND_RE = re.compile(
    r"(?<!::)(?<!\.)(?<!->)\b(?:(?:rand|srand|drand48|lrand48|rand_r)\s*\(|random\s*\(\s*\))")
TIME_CALL_RE = re.compile(r"(?<![\w:.>])(?:time|clock)\s*\(\s*(?:NULL|nullptr|0)?\s*\)")
CHRONO_NOW_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now\b")
GETENV_RE = re.compile(r"\bgetenv\s*\(")

# --- unordered-iter patterns -------------------------------------------
HASH_CONTAINER_RE = (
    r"(?:util\s*::\s*)?FlatHashMap|(?:util\s*::\s*)?FlatHashSet|"
    r"std\s*::\s*unordered_(?:multi)?(?:map|set)")
# A declaration introduces a name the TU may later iterate: container
# template, its arguments (lazily, same line), then the identifier.
HASH_DECL_RE = re.compile(
    r"(?:" + HASH_CONTAINER_RE + r")\s*<.*>\s+(\w+)\s*[;{=(]")
FOR_EACH_RE = re.compile(r"(?<!std::)(?:\.|->)for_each\s*\(")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*(?:const\s+)?[\w:<>,&*\s\[\]]+?:\s*([^)]+)\)")
SORT_RE = re.compile(r"\bsort\s*\(")
SORT_WINDOW = 5  # lines after an iteration site in which a sort() absolves it

# --- unordered-emission patterns ---------------------------------------
# Calls that append to an ordered output artifact: Tracer events (every
# recording method) and RunReport sections.  Metrics cells are excluded —
# the registry is keyed by name, so write order cannot leak into output.
EMIT_RE = re.compile(
    r"\btrace\s*(?:\.|->)\s*(?:instant|counter|begin|end|complete|async_begin|"
    r"async_end|flow_start|flow_step|flow_end)\s*\(|"
    r"\breport\s*(?:\.|->)\s*(?:add_\w+|set_meta)\s*\(|"
    r"(?:\.|->)\s*write_chrome_trace\s*\(")
EMIT_WINDOW = 8  # lines after an iteration site scanned for emission calls

# --- pointer-key patterns ----------------------------------------------
PTR_KEY_RE = re.compile(
    r"(?:FlatHashMap|FlatHashSet|std\s*::\s*(?:unordered_)?(?:multi)?(?:map|set))"
    r"\s*<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?\s*\*")
LESS_PTR_RE = re.compile(r"std\s*::\s*less\s*<[^<>]*\*\s*>")

# --- mutable-global patterns -------------------------------------------
STATIC_DECL_RE = re.compile(r"^\s*(?:static|thread_local)\s+(?:thread_local\s+)?(.*)$")
STATIC_OK_RE = re.compile(
    r"^(?:const\b|constexpr\b|inline\s+const\b|inline\s+constexpr\b|assert\b)")
SYNC_OK_RE = re.compile(
    r"std\s*::\s*atomic|util\s*::\s*Mutex|\bMutex\b|std\s*::\s*mutex|"
    r"alignas\s*\(\s*64\s*\)|CICERO_GUARDED_BY")


def sim_allowed(lines: list[str], idx: int) -> bool:
    return allowed(lines, idx, ALLOW_MARK)


def ordered_justified(lines: list[str], idx: int) -> bool:
    return allowed(lines, idx, ORDERED_MARK) or sim_allowed(lines, idx)


def hash_container_names(lines: list[str]) -> set[str]:
    """Names declared (in this file) with a hash-container type.  Callers
    feed in sibling headers too, so members declared in foo.hpp are known
    when foo.cpp iterates them."""
    names: set[str] = set()
    for raw in lines:
        clean = strip_noise(raw)
        m = HASH_DECL_RE.search(clean)
        if m:
            names.add(m.group(1))
    return names


def emission_before_sort(lines: list[str], idx: int) -> int | None:
    """Index of the first trace/report emission call within EMIT_WINDOW
    lines of the iteration at idx, or None if a sort() intervenes first
    (the loop only collects; emission happens from the sorted copy)."""
    for j in range(idx, min(len(lines), idx + EMIT_WINDOW + 1)):
        clean = strip_noise(lines[j])
        if j > idx and SORT_RE.search(clean):
            return None
        if EMIT_RE.search(clean):
            return j
    return None


def sorted_soon_after(lines: list[str], idx: int) -> bool:
    """True if a sort() call appears on the site line or within the next
    SORT_WINDOW lines — the collect-then-sort idiom, where the iteration
    only gathers entries and the order is fixed before anything acts."""
    for j in range(idx, min(len(lines), idx + SORT_WINDOW + 1)):
        if SORT_RE.search(strip_noise(lines[j])):
            return True
    return False


def sibling_header_lines(path: Path) -> list[str]:
    """Lines of the same-stem header next to a .cpp (where members that
    the .cpp iterates are declared)."""
    if path.suffix not in (".cpp", ".cc"):
        return []
    for ext in (".hpp", ".h"):
        header = path.with_suffix(ext)
        if header.is_file():
            try:
                return lintlib.read_lines(header)
            except OSError:
                return []
    return []


def lint_file(path: Path, rel: str, out: list[Violation]) -> None:
    try:
        lines = lintlib.read_lines(path)
    except OSError as e:
        out.append(Violation(rel, 0, "io-error", str(e)))
        return

    in_event_tu = any(rel.startswith(d) for d in EVENT_DIRS)
    in_shard_dirs = any(rel.startswith(d) for d in SHARD_STATE_DIRS)

    iterable_names = hash_container_names(lines)
    iterable_names |= hash_container_names(sibling_header_lines(path))

    for i, raw in enumerate(lines):
        clean = strip_noise(raw)
        lineno = i + 1

        # ambient-nondet: everywhere under src/.
        if RANDOM_DEVICE_RE.search(clean) and not sim_allowed(lines, i):
            out.append(Violation(rel, lineno, "ambient-nondet",
                                 "std::random_device is OS entropy; derive randomness "
                                 "from the seeded util::Rng / crypto::Drbg streams"))
        if LIBC_RAND_RE.search(clean) and not sim_allowed(lines, i):
            out.append(Violation(rel, lineno, "ambient-nondet",
                                 "libc randomness is ambient nondeterminism; use the "
                                 "seeded RNG streams"))
        if TIME_CALL_RE.search(clean) and not sim_allowed(lines, i):
            out.append(Violation(rel, lineno, "ambient-nondet",
                                 "wall-clock read; simulation time comes from "
                                 "Simulator::now()"))
        if CHRONO_NOW_RE.search(clean) and not sim_allowed(lines, i):
            out.append(Violation(rel, lineno, "ambient-nondet",
                                 "std::chrono clock read; simulation time comes from "
                                 "Simulator::now() (wall timing belongs in bench/)"))
        if GETENV_RE.search(clean) and not sim_allowed(lines, i):
            out.append(Violation(rel, lineno, "ambient-nondet",
                                 "getenv outside config load makes the environment a "
                                 "hidden input; justify with simlint-allow"))

        # pointer-key: everywhere under src/.
        if (PTR_KEY_RE.search(clean) or LESS_PTR_RE.search(clean)) \
                and not sim_allowed(lines, i):
            out.append(Violation(rel, lineno, "pointer-key",
                                 "pointer-keyed container / address ordering varies "
                                 "under ASLR; key by id or content instead"))

        # unordered-iter / unordered-emission: event-relevant TUs only.
        if in_event_tu:
            hit = bool(FOR_EACH_RE.search(clean))
            if not hit:
                m = RANGE_FOR_RE.search(clean)
                if m:
                    seq = m.group(1).strip()
                    seq = re.sub(r"^this\s*->\s*", "", seq)
                    if seq in iterable_names:
                        hit = True
            if hit:
                if not ordered_justified(lines, i) \
                        and not sorted_soon_after(lines, i):
                    out.append(Violation(rel, lineno, "unordered-iter",
                                         "hash-order iteration in an event-emitting TU; "
                                         "sort first or justify with simlint-ordered:"))
                emit_at = emission_before_sort(lines, i)
                if emit_at is not None and not sim_allowed(lines, i) \
                        and not sim_allowed(lines, emit_at):
                    out.append(Violation(rel, emit_at + 1, "unordered-emission",
                                         "trace/report emission fed by hash-order "
                                         "iteration makes artifact bytes a function of "
                                         "table placement; emit from a sorted copy"))

        # mutable-global: the shard-safety surface (src/sim + src/core).
        if in_shard_dirs:
            m = STATIC_DECL_RE.match(clean)
            if m and not STATIC_OK_RE.match(m.group(1).strip()) \
                    and not SYNC_OK_RE.search(clean) \
                    and not sim_allowed(lines, i):
                decl = m.group(1)
                eq = decl.find("=")
                paren = decl.find("(")
                is_function = paren != -1 and (eq == -1 or paren < eq)
                if not is_function and decl.rstrip().endswith((";", "{", "}")):
                    out.append(Violation(rel, lineno, "mutable-global",
                                         "mutable static state must be std::atomic, "
                                         "shard-striped (alignas(64)), or mutex-guarded"))


def lint_tree(root: Path) -> list[Violation]:
    out: list[Violation] = []
    for path, rel in lintlib.iter_source_files(root, ("src",)):
        lint_file(path, rel, out)
    return out


SELF_TEST_CASES = (
    # Ambient nondeterminism fires everywhere under src/.
    lintlib.SelfTestCase("bad_ambient.cpp", "src/sim/bad_ambient.cpp",
                         {"ambient-nondet"}),
    # Hash-order iteration fires in event TUs ...
    lintlib.SelfTestCase("bad_unordered_iter.cpp", "src/sched/bad_unordered_iter.cpp",
                         {"unordered-iter"}),
    # ... and stays quiet in the crypto/util leaf libraries.
    lintlib.SelfTestCase("bad_unordered_iter.cpp", "src/crypto/bad_unordered_iter.cpp",
                         set()),
    lintlib.SelfTestCase("bad_pointer_key.cpp", "src/core/bad_pointer_key.cpp",
                         {"pointer-key"}),
    # Emission from a hash loop fires even under a simlint-ordered:
    # justification (artifact bytes must be placement-independent) ...
    lintlib.SelfTestCase("bad_unordered_emission.cpp",
                         "src/core/bad_unordered_emission.cpp",
                         {"unordered-emission"}),
    # ... while sorted-copy emission and an explicit allow stay clean.
    lintlib.SelfTestCase("good_ordered_emission.cpp",
                         "src/core/good_ordered_emission.cpp", set()),
    # Mutable statics fire in the shard-safety dirs ...
    lintlib.SelfTestCase("bad_mutable_global.cpp", "src/sim/bad_mutable_global.cpp",
                         {"mutable-global"}),
    # ... and are out of scope elsewhere (ctlint/util conventions govern).
    lintlib.SelfTestCase("bad_mutable_global.cpp", "src/obs/bad_mutable_global.cpp",
                         set()),
    # Sorted, justified, atomic, striped and suppressed sites are clean.
    lintlib.SelfTestCase("good_usage.cpp", "src/sim/good_usage.cpp", set()),
)


def self_test(_root: Path) -> int:
    fixtures = Path(__file__).resolve().parent / "fixtures"
    return lintlib.run_self_test("simlint", fixtures, SELF_TEST_CASES, lint_file)


if __name__ == "__main__":
    sys.exit(lintlib.main("simlint", __doc__, lint_tree, self_test,
                          Path(__file__).resolve().parents[2]))
