"""Shared driver for the repo's policy linters (ctlint, simlint).

Each linter is a thin module over this library: it owns its rule logic
(a `lint_file(path, rel, out)` callable plus whatever tree-wide checks it
needs) and a table of self-test fixtures; lintlib owns everything the two
linters would otherwise duplicate — violation records, comment/string
stripping, suppression-marker handling, deterministic file walking, the
fixture self-test harness, and the argparse entry point.

Suppression convention: a line (or the comment block immediately above
it) containing the linter's allow marker (`ctlint-allow:`,
`simlint-allow:`, ...) is exempt; the text after the colon should name
the rule being suppressed and justify it.  `allowed()` implements the
lookup; linters may register additional markers (simlint's
`simlint-ordered:` iteration justification uses the same mechanics).
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

SOURCE_GLOBS = ("*.cpp", "*.hpp", "*.cc", "*.h")


class Violation:
    def __init__(self, path: str, line: int, rule: str, text: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.text = text

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.text}"


def strip_noise(line: str) -> str:
    """Removes string/char literals and // comments so regexes don't match
    inside them.  (Block comments are handled a line at a time upstream.)"""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//", 1)[0]


def allowed(lines: list[str], idx: int, mark: str) -> bool:
    """True if line idx (0-based) carries or follows an allow marker."""
    if mark in lines[idx]:
        return True
    # Walk back over an immediately preceding comment block.
    j = idx - 1
    while j >= 0 and lines[j].lstrip().startswith("//"):
        if mark in lines[j]:
            return True
        j -= 1
    return False


def read_lines(path: Path) -> list[str]:
    return path.read_text(encoding="utf-8", errors="replace").splitlines()


def iter_source_files(root: Path, tops: Sequence[str],
                      globs: Sequence[str] = SOURCE_GLOBS) -> Iterator[tuple[Path, str]]:
    """Yields (path, repo-relative posix path) for every source file under
    the given top-level directories, in a deterministic order."""
    for top in tops:
        base = root / top
        if not base.is_dir():
            continue
        for glob in globs:
            for path in sorted(base.rglob(glob)):
                yield path, path.relative_to(root).as_posix()


LintFileFn = Callable[[Path, str, list], None]


class SelfTestCase:
    """One fixture run: lint `fixture` as if it lived at `scan_as` and
    expect exactly the rule names in `expected` to fire."""

    def __init__(self, fixture: str, scan_as: str, expected: Iterable[str]):
        self.fixture = fixture
        self.scan_as = scan_as
        self.expected = set(expected)


def run_self_test(name: str, fixtures_dir: Path, cases: Sequence[SelfTestCase],
                  lint_file: LintFileFn) -> int:
    """Runs every fixture case; returns 1 on any mismatch.  A linter whose
    bad fixtures stop firing (or whose good fixture starts firing) fails
    its own suite, so a silently-broken linter can't pass CI."""
    failures = 0
    for case in cases:
        out: list[Violation] = []
        lint_file(fixtures_dir / case.fixture, case.scan_as, out)
        got = {v.rule for v in out}
        if got != case.expected:
            failures += 1
            print(f"SELF-TEST FAIL {case.fixture} (as {case.scan_as}): "
                  f"expected rules {sorted(case.expected)}, got {sorted(got)}")
            for v in out:
                print(f"  {v}")
        else:
            print(f"self-test ok: {case.fixture} (as {case.scan_as}) -> "
                  f"{sorted(got) or '[clean]'}")
    if failures == 0:
        print(f"{name} self-test: all fixtures behaved as expected")
    return 1 if failures else 0


def main(name: str, doc: str, lint_tree: Callable[[Path], list],
         self_test: Callable[[Path], int], default_root: Path) -> int:
    """Shared argparse entry point: tree scan by default, --self-test runs
    the fixture suite."""
    ap = argparse.ArgumentParser(description=doc,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=Path, default=default_root,
                    help="repository root (default: two levels above the linter)")
    ap.add_argument("--self-test", action="store_true",
                    help="lint the bundled fixtures and check expected findings")
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.root)

    violations = lint_tree(args.root)
    if violations:
        for v in violations:
            print(v)
        print(f"{name}: {len(violations)} violation(s)")
        return 1
    print(f"{name}: clean")
    return 0
