// Pre-PR reference implementations of the two hot-path data structures
// replaced by the scale work, kept verbatim (modulo namespacing) so
// bench_scale can measure the speedup on identical workloads:
//
//   * `LegacyEventQueue` — the original sim::Simulator event core: a
//     std::priority_queue of (time, seq, std::function) entries with no
//     cancellation.  Ack-timeout timers armed by the controller could not
//     be removed when the ack landed, so every completed update left a
//     deferred no-op in the heap that still had to be popped (and its
//     closure destroyed) at its deadline.
//
//   * `LegacyDependencyTracker` — the original sched::DependencyTracker:
//     three std::map/std::set structures (updates, blocked -> unmet set,
//     rdeps) with per-node allocations on every add/complete.
//
// These are benchmark-only: production code uses the indexed 4-ary heap
// (sim/simulator.hpp) and the dense tracker (sched/depgraph.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sched/update.hpp"
#include "sim/time.hpp"

namespace cicero::bench {

class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  sim::SimTime now() const { return now_; }

  void at(sim::SimTime t, Callback fn) { queue_.push(Entry{t, next_seq_++, std::move(fn)}); }
  void after(sim::SimTime delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  bool step() {
    if (queue_.empty()) return false;
    // Same move-out-of-top trick the original Simulator::step used.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = e.time;
    ++events_processed_;
    e.fn();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

  bool empty() const { return queue_.empty(); }
  std::uint64_t events_processed() const { return events_processed_; }

 private:
  struct Entry {
    sim::SimTime time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  sim::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

class LegacyDependencyTracker {
 public:
  /// The original map-based has_cycle, verbatim: this validation ran on
  /// every add() in the pre-PR tracker and is part of what the dense
  /// rewrite speeds up.
  static bool legacy_has_cycle(const sched::UpdateSchedule& schedule) {
    std::map<sched::UpdateId, std::vector<sched::UpdateId>> deps;
    for (const auto& su : schedule.updates) deps[su.update.id] = su.deps;
    for (const auto& su : schedule.updates) {
      for (const sched::UpdateId d : su.deps) {
        if (deps.count(d) == 0) return true;
      }
    }
    enum class Color { kWhite, kGray, kBlack };
    std::map<sched::UpdateId, Color> color;
    for (const auto& [id, d] : deps) color[id] = Color::kWhite;
    for (const auto& [start, d0] : deps) {
      if (color[start] != Color::kWhite) continue;
      std::vector<std::pair<sched::UpdateId, std::size_t>> stack{{start, 0}};
      color[start] = Color::kGray;
      while (!stack.empty()) {
        auto& [id, next] = stack.back();
        const auto& children = deps[id];
        if (next < children.size()) {
          const sched::UpdateId child = children[next++];
          if (color[child] == Color::kGray) return true;
          if (color[child] == Color::kWhite) {
            color[child] = Color::kGray;
            stack.emplace_back(child, 0);
          }
        } else {
          color[id] = Color::kBlack;
          stack.pop_back();
        }
      }
    }
    return false;
  }

  std::vector<sched::UpdateId> add(const sched::UpdateSchedule& schedule) {
    std::set<sched::UpdateId> ids;
    for (const auto& su : schedule.updates) ids.insert(su.update.id);
    sched::UpdateSchedule internal;
    for (const auto& su : schedule.updates) {
      sched::ScheduledUpdate filtered{su.update, {}};
      for (const sched::UpdateId d : su.deps) {
        if (ids.count(d) != 0) filtered.deps.push_back(d);
      }
      internal.updates.push_back(std::move(filtered));
    }
    if (legacy_has_cycle(internal)) {
      throw std::invalid_argument("LegacyDependencyTracker::add: cyclic schedule");
    }
    for (const auto& su : schedule.updates) {
      for (const sched::UpdateId d : su.deps) {
        if (ids.count(d) == 0 && updates_.count(d) == 0 && completed_.count(d) == 0) {
          throw std::invalid_argument("LegacyDependencyTracker::add: unknown dependence");
        }
      }
    }
    for (const auto& su : schedule.updates) {
      if (updates_.count(su.update.id) != 0) {
        throw std::invalid_argument("LegacyDependencyTracker::add: duplicate update id");
      }
    }
    std::vector<sched::UpdateId> ready;
    for (const auto& su : schedule.updates) {
      updates_[su.update.id] = su.update;
      std::set<sched::UpdateId> unmet;
      for (const sched::UpdateId d : su.deps) {
        if (completed_.count(d) == 0) unmet.insert(d);
      }
      if (unmet.empty()) {
        ready.push_back(su.update.id);
        ++in_flight_;
      } else {
        for (const sched::UpdateId d : unmet) rdeps_[d].push_back(su.update.id);
        blocked_[su.update.id] = std::move(unmet);
      }
    }
    return ready;
  }

  std::vector<sched::UpdateId> complete(sched::UpdateId id) {
    std::vector<sched::UpdateId> ready;
    if (updates_.count(id) == 0 || completed_.count(id) != 0) return ready;
    completed_.insert(id);
    const auto self = blocked_.find(id);
    if (self != blocked_.end()) {
      blocked_.erase(self);
    } else if (in_flight_ > 0) {
      --in_flight_;
    }
    const auto it = rdeps_.find(id);
    if (it == rdeps_.end()) return ready;
    for (const sched::UpdateId dependent : it->second) {
      const auto bit = blocked_.find(dependent);
      if (bit == blocked_.end()) continue;
      bit->second.erase(id);
      if (bit->second.empty()) {
        blocked_.erase(bit);
        ready.push_back(dependent);
        ++in_flight_;
      }
    }
    rdeps_.erase(it);
    return ready;
  }

  std::size_t in_flight() const { return in_flight_; }
  std::size_t blocked() const { return blocked_.size(); }

 private:
  std::map<sched::UpdateId, sched::Update> updates_;
  std::map<sched::UpdateId, std::set<sched::UpdateId>> blocked_;
  std::map<sched::UpdateId, std::vector<sched::UpdateId>> rdeps_;
  std::set<sched::UpdateId> completed_;
  std::size_t in_flight_ = 0;
};

}  // namespace cicero::bench
