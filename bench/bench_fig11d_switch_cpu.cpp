// Fig. 11d — switch (OVS) CPU utilisation over the duration of a Hadoop
// workload, per framework.
//
// Paper shape: Cicero's switch-side signature aggregation costs the most
// switch CPU; controller aggregation roughly halves it; the centralized
// and crash-tolerant baselines sit lowest (no signature work at all).
#include "bench_common.hpp"

int main() {
  using namespace cicero;
  using namespace cicero::bench;

  print_header("Fig. 11d", "Mean switch CPU utilisation per 1 s window, Hadoop workload");

  obs::RunReport report("fig11d_switch_cpu");
  report.set_meta("workload", "hadoop");
  report.set_meta("flows", static_cast<std::int64_t>(kBenchFlows));
  obs::crypto_ops().reset();

  const sim::SimTime window = sim::seconds(1);
  constexpr std::size_t kWindows = 12;
  report.set_meta("window_s", std::int64_t{1});
  report.set_meta("windows", static_cast<std::int64_t>(kWindows));
  std::vector<std::pair<std::string, std::vector<double>>> series;
  std::vector<double> totals;
  for (const auto fw :
       {core::FrameworkKind::kCentralized, core::FrameworkKind::kCrashTolerant,
        core::FrameworkKind::kCicero, core::FrameworkKind::kCiceroAgg}) {
    auto dep = make_dep(fw, net::build_pod(bench_pod()));
    run_workload(*dep, workload::WorkloadKind::kHadoop, kBenchFlows, 7, 150.0);
    auto w = dep->switch_cpu_windows(window, window * static_cast<sim::SimTime>(kWindows));
    double total = 0.0;
    for (const auto sw : dep->topology().switches()) {
      total += static_cast<double>(dep->switch_at(sw).cpu().busy_total());
    }
    totals.push_back(total / 1e6);  // ms
    series.emplace_back(core::framework_name(fw), std::move(w));
    report_run(report, *dep, core::framework_name(fw));
  }

  std::printf("# mean switch CPU utilisation (%%) per window of workload time\n");
  std::printf("%-10s", "t(s)");
  for (const auto& [name, w] : series) std::printf(" %16s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < kWindows; ++i) {
    std::printf("%-10zu", i);
    for (const auto& [name, w] : series) {
      std::printf(" %15.2f%%", i < w.size() ? w[i] * 100.0 : 0.0);
    }
    std::printf("\n");
  }

  std::printf("\n# total switch CPU busy time (ms across all switches):\n");
  for (std::size_t i = 0; i < series.size(); ++i) {
    std::printf("#   %-16s %10.1f\n", series[i].first.c_str(), totals[i]);
  }
  std::printf("# paper shape: Cicero > Cicero Agg (about half) > crash/centralized;\n");
  std::printf("#   measured Cicero/CiceroAgg ratio = %.2f (paper: ~2x)\n",
              totals[3] > 0 ? totals[2] / totals[3] : 0.0);
  write_report(report, "fig11d");
  return 0;
}
