// Shared plumbing for the figure-regeneration benches.
//
// Every bench binary prints (a) the experiment id and setup, (b) the same
// series/rows the paper's figure or table reports, and (c) a short
// "paper vs measured" summary line that EXPERIMENTS.md quotes.  Output is
// plain text so `./bench_figXX | tee` is the full workflow.
#pragma once

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/deployment.hpp"
#include "obs/report.hpp"
#include "util/stats.hpp"
#include "workload/workload.hpp"

namespace cicero::bench {

inline void print_header(const std::string& experiment, const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

/// Builds a deployment in cost-model mode (real crypto validated by the
/// test suite; sweeps use calibrated simulated costs for tractable runs).
/// `threads > 1` enables the sharded parallel engine when the topology
/// has enough domains; otherwise the sequential fast path runs.
inline std::unique_ptr<core::Deployment> make_dep(core::FrameworkKind fw, net::Topology topo,
                                                  std::size_t controllers = 4,
                                                  bool teardown = false,
                                                  std::uint32_t threads = 1) {
  core::DeploymentParams dp;
  dp.framework = fw;
  dp.controllers_per_domain = controllers;
  dp.real_crypto = false;
  dp.teardown_after_flow = teardown;
  dp.seed = 42;
  dp.threads = threads;
  return std::make_unique<core::Deployment>(std::move(topo), dp);
}

/// Monotonic wall clock in seconds, for the standard timing fields below.
inline double wall_clock_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// Injects a workload and runs to (near-)quiescence.
inline void run_workload(core::Deployment& dep, workload::WorkloadKind kind,
                         std::size_t flows, std::uint64_t seed = 7,
                         double rate_per_sec = 400.0) {
  workload::WorkloadParams wp;
  wp.kind = kind;
  wp.flow_count = flows;
  wp.arrival_rate_per_sec = rate_per_sec;
  wp.seed = seed;
  workload::WorkloadGenerator gen(dep.topology(), wp);
  dep.inject(gen.generate());
  const double horizon_sec = static_cast<double>(flows) / rate_per_sec + 30.0;
  dep.run(sim::from_sec(horizon_sec));
}

inline void print_cdf_series(const std::string& label, const util::CdfCollector& cdf,
                             std::size_t points = 20) {
  std::printf("# series: %s (n=%zu, mean=%.2f ms, p50=%.2f, p99=%.2f)\n", label.c_str(),
              cdf.count(), cdf.mean(), cdf.count() ? cdf.median() : 0.0,
              cdf.count() ? cdf.p99() : 0.0);
  std::printf("#   %-14s %s\n", "value(ms)", "CDF");
  for (const auto& [x, q] : cdf.cdf_series(points)) {
    std::printf("    %-14.3f %.3f\n", x, q);
  }
}

/// Lowercases a human label into a metric-name prefix component
/// ("Crash Tolerant" -> "crash_tolerant").
inline std::string metric_slug(const std::string& label) {
  std::string s;
  for (const char c : label) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      s += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!s.empty() && s.back() != '_') {
      s += '_';
    }
  }
  while (!s.empty() && s.back() == '_') s.pop_back();
  return s;
}

/// Folds one finished deployment run into `report` under a
/// `<slug(label)>.` prefix: the full metrics registry, the process-wide
/// crypto op counters (reset afterwards so runs don't bleed into each
/// other), the completion/setup CDFs, the critical-path attribution
/// summary, and the per-shard engine telemetry.
/// Every run carries two standard fields so reports stay comparable
/// across thread counts and machines: `<slug>.threads` (worker shards
/// backing run(); 1 = sequential fast path) and, when the caller
/// measured one, `<slug>.wall_sec` (wall-clock duration of the run).
inline void report_run(obs::RunReport& report, core::Deployment& dep, const std::string& label,
                       double wall_sec = -1.0) {
  const std::string slug = metric_slug(label);
  const std::string prefix = slug + ".";
  report.add_metrics(dep.obs().metrics, prefix);
  report.add_crypto_ops(obs::crypto_ops(), prefix);
  obs::crypto_ops().reset();
  report.add_cdf(prefix + "completion_ms", dep.completion_cdf());
  report.add_cdf(prefix + "setup_ms", dep.setup_cdf());
  report.add_critical_path(slug, dep.obs().critpath.summarize());
  report.add_shards(slug, dep.shard_telemetry());
  obs::MetricsRegistry standard;
  standard.gauge(prefix + "threads").set(static_cast<double>(dep.worker_shards()));
  if (wall_sec >= 0.0) standard.gauge(prefix + "wall_sec").set(wall_sec);
  standard.counter(prefix + "trace.dropped_events").inc(dep.obs().trace.dropped_events());
  report.add_metrics(standard);
}

/// Writes the report as BENCH_<id>.report.json in the working directory
/// (or $CICERO_REPORT_DIR when set) and prints the path, so scripts can
/// pick the file up from the bench's stdout.
inline void write_report(const obs::RunReport& report, const std::string& id) {
  std::string dir = ".";
  if (const char* env = std::getenv("CICERO_REPORT_DIR")) dir = env;
  const std::string path = dir + "/BENCH_" + id + ".report.json";
  if (report.write(path)) {
    std::printf("\n# report: %s\n", path.c_str());
  } else {
    std::printf("\n# report: FAILED to write %s\n", path.c_str());
  }
}

inline net::FabricParams bench_pod() {
  net::FabricParams p;
  p.racks_per_pod = 8;   // paper: 40 racks/pod; scaled for simulation speed
  p.hosts_per_rack = 3;
  return p;
}

constexpr std::size_t kBenchFlows = 1500;  // paper: 5000 (scaled; same CDF shape)

}  // namespace cicero::bench
