// Crypto micro-benchmarks (google-benchmark).
//
// Not a paper figure: these numbers calibrate core::CostModel (see
// DESIGN.md §4.2 and EXPERIMENTS.md "calibration") and characterise the
// from-scratch secp256k1 / threshold stack.
#include <benchmark/benchmark.h>

#include "crypto/dkg.hpp"
#include "crypto/frost.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "crypto/simbls.hpp"

namespace {

using namespace cicero;
using namespace cicero::crypto;

void BM_Sha256_1k(benchmark::State& state) {
  const util::Bytes data(1024, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
}
BENCHMARK(BM_Sha256_1k);

void BM_FieldMul(benchmark::State& state) {
  Drbg d(1);
  const Scalar a = d.next_scalar(), b = d.next_scalar();
  Scalar acc = a;
  for (auto _ : state) {
    acc = acc * b;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_FieldMul);

void BM_ScalarInverse(benchmark::State& state) {
  Drbg d(2);
  const Scalar a = d.next_scalar();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.inverse());
  }
}
BENCHMARK(BM_ScalarInverse);

void BM_PointMul(benchmark::State& state) {
  Drbg d(3);
  const Scalar k = d.next_scalar();
  const Point p = Point::mul_gen(d.next_scalar());
  for (auto _ : state) {
    benchmark::DoNotOptimize(p * k);
  }
}
BENCHMARK(BM_PointMul);

void BM_PointMulNaive(benchmark::State& state) {
  // The seed 4-bit fixed-window ladder, for the before/after ratio.
  Drbg d(3);
  const Scalar k = d.next_scalar();
  const Point p = Point::mul_gen(d.next_scalar());
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.mul_naive(k));
  }
}
BENCHMARK(BM_PointMulNaive);

void BM_MulGen(benchmark::State& state) {
  Drbg d(30);
  const Scalar k = d.next_scalar();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Point::mul_gen(k));
  }
}
BENCHMARK(BM_MulGen);

void BM_MulGenNaive(benchmark::State& state) {
  // k*G through the seed ladder: the denominator of the mul_gen speedup.
  Drbg d(30);
  const Scalar k = d.next_scalar();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Point::generator().mul_naive(k));
  }
}
BENCHMARK(BM_MulGenNaive);

void BM_DoubleScalarMul(benchmark::State& state) {
  // a*G + b*P via Strauss–Shamir: the signature-verification kernel.
  Drbg d(31);
  const Scalar a = d.next_scalar(), b = d.next_scalar();
  const Point p = Point::mul_gen(d.next_scalar());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Point::mul_gen_add(a, p, b));
  }
}
BENCHMARK(BM_DoubleScalarMul);

void BM_LagrangeAll(benchmark::State& state) {
  const auto t = static_cast<std::size_t>(state.range(0));
  std::vector<ShareIndex> indices;
  for (std::size_t i = 1; i <= t; ++i) indices.push_back(static_cast<ShareIndex>(2 * i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lagrange_all_at_zero(indices));
  }
}
BENCHMARK(BM_LagrangeAll)->Arg(3)->Arg(7)->Arg(13);

void BM_LagrangeSerial(benchmark::State& state) {
  // One lagrange_at_zero (and thus one inversion) per index: the pattern
  // the seed aggregation loops used.
  const auto t = static_cast<std::size_t>(state.range(0));
  std::vector<ShareIndex> indices;
  for (std::size_t i = 1; i <= t; ++i) indices.push_back(static_cast<ShareIndex>(2 * i));
  for (auto _ : state) {
    std::vector<Scalar> out;
    for (const ShareIndex i : indices) out.push_back(lagrange_at_zero(i, indices));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_LagrangeSerial)->Arg(3)->Arg(7)->Arg(13);

void BM_BatchToAffine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Drbg d(32);
  std::vector<Point> pts;
  for (std::size_t i = 0; i < n; ++i) pts.push_back(Point::mul_gen(d.next_scalar()) * d.next_scalar());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Point::batch_to_bytes(pts));
  }
}
BENCHMARK(BM_BatchToAffine)->Arg(4)->Arg(16)->Arg(64);

void BM_SchnorrSign(benchmark::State& state) {
  Drbg d(4);
  const auto kp = SchnorrKeyPair::generate(d);
  const util::Bytes msg = util::to_bytes("event: unroutable packet at s17");
  for (auto _ : state) {
    benchmark::DoNotOptimize(schnorr_sign(kp.sk, msg));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  Drbg d(5);
  const auto kp = SchnorrKeyPair::generate(d);
  const util::Bytes msg = util::to_bytes("event: unroutable packet at s17");
  const auto sig = schnorr_sign(kp.sk, msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schnorr_verify(kp.pk, msg, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

struct ThresholdSetup {
  std::vector<DkgParticipant::Result> results;
  util::Bytes msg = util::to_bytes("update: install r at s");
  explicit ThresholdSetup(std::size_t n, std::size_t t) {
    Drbg d(6);
    std::vector<ShareIndex> members;
    for (std::size_t i = 1; i <= n; ++i) members.push_back(static_cast<ShareIndex>(i));
    results = run_dkg(members, t, d);
  }
};

void BM_SimBlsPartialSign(benchmark::State& state) {
  static const ThresholdSetup setup(4, 2);
  const auto& scheme = SimBlsScheme::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.partial_sign(setup.results[0].share, setup.msg));
  }
}
BENCHMARK(BM_SimBlsPartialSign);

void BM_SimBlsAggregate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t t = (n - 1) / 3 + 1;
  const ThresholdSetup setup(n, t);
  const auto& scheme = SimBlsScheme::instance();
  std::vector<PartialSignature> partials;
  for (std::size_t i = 0; i < t; ++i) {
    partials.push_back(scheme.partial_sign(setup.results[i].share, setup.msg));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.aggregate(setup.msg, partials, t));
  }
}
BENCHMARK(BM_SimBlsAggregate)->Arg(4)->Arg(7)->Arg(10)->Arg(13);

void BM_SimBlsVerify(benchmark::State& state) {
  static const ThresholdSetup setup(4, 2);
  const auto& scheme = SimBlsScheme::instance();
  std::vector<PartialSignature> partials;
  for (std::size_t i = 0; i < 2; ++i) {
    partials.push_back(scheme.partial_sign(setup.results[i].share, setup.msg));
  }
  const auto agg = scheme.aggregate(setup.msg, partials, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scheme.verify(setup.results[0].group_public_key, setup.msg, *agg));
  }
}
BENCHMARK(BM_SimBlsVerify);

void BM_FrostSignSession(benchmark::State& state) {
  static const ThresholdSetup setup(4, 3);
  Drbg d(7);
  std::vector<FrostSigner> signers;
  for (int i = 0; i < 3; ++i) {
    signers.emplace_back(setup.results[static_cast<std::size_t>(i)].share,
                         setup.results[0].group_public_key);
  }
  for (auto _ : state) {
    std::vector<FrostCommitment> session;
    for (auto& s : signers) session.push_back(s.commit(d));
    std::map<ShareIndex, Scalar> partials;
    for (auto& s : signers) partials[s.id()] = s.sign(setup.msg, session);
    benchmark::DoNotOptimize(
        frost_aggregate(setup.msg, session, setup.results[0].group_public_key, partials));
  }
}
BENCHMARK(BM_FrostSignSession);

void BM_Dkg(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t t = (n - 1) / 3 + 1;
  Drbg d(8);
  std::vector<ShareIndex> members;
  for (std::size_t i = 1; i <= n; ++i) members.push_back(static_cast<ShareIndex>(i));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_dkg(members, t, d));
  }
}
BENCHMARK(BM_Dkg)->Arg(4)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_Reshare(benchmark::State& state) {
  static const ThresholdSetup setup(4, 2);
  Drbg d(9);
  const std::vector<ShareIndex> quorum = {1, 2};
  const std::vector<ShareIndex> new_members = {1, 2, 3, 4, 5};
  for (auto _ : state) {
    std::vector<ReshareDeal> deals;
    deals.push_back(make_reshare_deal(setup.results[0].share, quorum, new_members, 2, d));
    deals.push_back(make_reshare_deal(setup.results[1].share, quorum, new_members, 2, d));
    benchmark::DoNotOptimize(reshare_finalize(deals, 5, new_members));
  }
}
BENCHMARK(BM_Reshare)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
