// Fig. 11a — CDF of Hadoop flow completion times on a single-pod,
// single-domain network: Centralized vs Crash Tolerant vs Cicero vs
// Cicero Agg, 4-controller control plane, flow rules reused across flows.
//
// Paper anchors: flow setup ≈2.9 ms centralized, ≈4.3 ms crash-tolerant,
// ≈8.3 ms Cicero, ≈11.6 ms Cicero Agg; after amortization the completion
// CDFs nearly coincide.
#include "bench_common.hpp"

int main() {
  using namespace cicero;
  using namespace cicero::bench;

  print_header("Fig. 11a", "Hadoop flow completion CDF, single pod, 4 controllers");

  obs::RunReport report("fig11a_hadoop_fct");
  report.set_meta("workload", "hadoop");
  report.set_meta("flows", static_cast<std::int64_t>(kBenchFlows));
  report.set_meta("controllers_per_domain", std::int64_t{4});
  obs::crypto_ops().reset();

  std::printf("%-16s %10s %10s %10s %10s %10s\n", "framework", "flows", "compl_ms",
              "setup_ms", "p50_ms", "p99_ms");
  struct Result {
    std::string name;
    util::CdfCollector completion;
    util::CdfCollector setup;
  };
  std::vector<Result> results;
  for (const auto fw :
       {core::FrameworkKind::kCentralized, core::FrameworkKind::kCrashTolerant,
        core::FrameworkKind::kCicero, core::FrameworkKind::kCiceroAgg}) {
    auto dep = make_dep(fw, net::build_pod(bench_pod()));
    run_workload(*dep, workload::WorkloadKind::kHadoop, kBenchFlows);
    Result r{core::framework_name(fw), dep->completion_cdf(), dep->setup_cdf()};
    report_run(report, *dep, r.name);
    std::printf("%-16s %10zu %10.2f %10.2f %10.2f %10.2f\n", r.name.c_str(),
                r.completion.count(), r.completion.mean(),
                r.setup.empty() ? 0.0 : r.setup.mean(), r.completion.median(),
                r.completion.p99());
    results.push_back(std::move(r));
  }

  std::printf("\n");
  for (const auto& r : results) print_cdf_series(r.name, r.completion);

  std::printf("\n# paper-vs-measured (mean flow SETUP latency, ms):\n");
  const double paper[] = {2.9, 4.3, 8.3, 11.6};
  for (std::size_t i = 0; i < results.size(); ++i) {
    std::printf("#   %-16s paper ~%4.1f   measured %5.2f\n", results[i].name.c_str(),
                paper[i], results[i].setup.empty() ? 0.0 : results[i].setup.mean());
  }
  std::printf("# shape check: after rule reuse amortization the completion CDFs\n");
  std::printf("# of all four frameworks nearly coincide (paper Fig. 11a).\n");
  write_report(report, "fig11a");
  return 0;
}
