// Fig. 12c — Hadoop flow completion CDF: one 12-controller domain vs
// three domains of 4 controllers each (two server pods + an interconnect
// domain; 12 controllers total either way).
//
// Paper shape: the multi-domain (MD) split processes most events in
// parallel in small (fast) control planes, pushing its CDF well left of
// the single large domain; the aggregation variants preserve their
// relative order.
#include "bench_common.hpp"

namespace {

using namespace cicero;
using namespace cicero::bench;

net::Topology two_pods(bool domain_per_pod) {
  net::FabricParams p = bench_pod();
  p.racks_per_pod = 6;
  p.pods_per_dc = 2;
  p.domain_per_pod = domain_per_pod;
  return net::build_datacenter(p);
}

}  // namespace

int main() {
  print_header("Fig. 12c",
               "Hadoop completion CDF: single domain (12 ctrl) vs 3 domains (4 ctrl each)");

  struct Setup {
    const char* label;
    core::FrameworkKind fw;
    bool multi_domain;
    std::size_t controllers;
  };
  const Setup setups[] = {
      {"Cicero", core::FrameworkKind::kCicero, false, 12},
      {"Cicero Agg", core::FrameworkKind::kCiceroAgg, false, 12},
      {"Cicero MD", core::FrameworkKind::kCicero, true, 4},
      {"Cicero Agg MD", core::FrameworkKind::kCiceroAgg, true, 4},
  };

  obs::RunReport report("fig12c_multidomain");
  report.set_meta("workload", "hadoop");
  report.set_meta("flows", static_cast<std::int64_t>(kBenchFlows));
  obs::crypto_ops().reset();

  std::printf("%-16s %10s %10s %10s\n", "setup", "flows", "compl_ms", "setup_ms");
  std::vector<std::pair<std::string, util::CdfCollector>> series;
  std::vector<double> setup_means;
  for (const auto& s : setups) {
    auto dep = make_dep(s.fw, two_pods(s.multi_domain), s.controllers);
    run_workload(*dep, workload::WorkloadKind::kHadoop, kBenchFlows, 7, 40.0);
    const auto completion = dep->completion_cdf();
    const auto setup = dep->setup_cdf();
    std::printf("%-16s %10zu %10.2f %10.2f\n", s.label, completion.count(),
                completion.mean(), setup.empty() ? 0.0 : setup.mean());
    series.emplace_back(s.label, completion);
    setup_means.push_back(setup.empty() ? 0.0 : setup.mean());
    report_run(report, *dep, s.label);
  }
  std::printf("\n");
  for (const auto& [name, cdf] : series) print_cdf_series(name, cdf);
  std::printf("\n# paper shape: MD setups beat the single 12-member domain\n");
  std::printf("#   measured setup speedup (Cicero single/MD): %.2fx\n",
              setup_means[2] > 0 ? setup_means[0] / setup_means[2] : 0.0);
  write_report(report, "fig12c");
  return 0;
}
