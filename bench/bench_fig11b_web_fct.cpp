// Fig. 11b — CDF of web-server flow completion times (same single-pod
// setup as Fig. 11a, web-server traffic mix).
#include "bench_common.hpp"

int main() {
  using namespace cicero;
  using namespace cicero::bench;

  print_header("Fig. 11b", "Web-server flow completion CDF, single pod, 4 controllers");

  obs::RunReport report("fig11b_web_fct");
  report.set_meta("workload", "web_server");
  report.set_meta("flows", static_cast<std::int64_t>(kBenchFlows));
  obs::crypto_ops().reset();

  std::printf("%-16s %10s %10s %10s\n", "framework", "flows", "compl_ms", "setup_ms");
  std::vector<std::pair<std::string, util::CdfCollector>> series;
  for (const auto fw :
       {core::FrameworkKind::kCentralized, core::FrameworkKind::kCrashTolerant,
        core::FrameworkKind::kCicero, core::FrameworkKind::kCiceroAgg}) {
    auto dep = make_dep(fw, net::build_pod(bench_pod()));
    run_workload(*dep, workload::WorkloadKind::kWebServer, kBenchFlows, 7, 150.0);
    const auto completion = dep->completion_cdf();
    const auto setup = dep->setup_cdf();
    std::printf("%-16s %10zu %10.2f %10.2f\n", core::framework_name(fw), completion.count(),
                completion.mean(), setup.empty() ? 0.0 : setup.mean());
    series.emplace_back(core::framework_name(fw), completion);
    report_run(report, *dep, core::framework_name(fw));
  }
  std::printf("\n");
  for (const auto& [name, cdf] : series) print_cdf_series(name, cdf);
  std::printf("\n# shape check (paper Fig. 11b): same ordering as Fig. 11a; the\n");
  std::printf("# web mix has more distinct (less reusable) flows, so the Cicero\n");
  std::printf("# curves sit slightly further right than under Hadoop.\n");
  write_report(report, "fig11b");
  return 0;
}
