// Fig. 12a — average network-update time for one event as a function of
// the control-plane size (1 and 4..10 members).
//
// Paper shape: update time grows with control-plane size for all
// replicated frameworks; the crash-tolerant protocol grows more slowly
// than Cicero (no quorum authentication on switches); Cicero at 10
// controllers is ~2.5x the centralized baseline.
#include "bench_common.hpp"

namespace {

using namespace cicero;
using namespace cicero::bench;

/// Measures the mean single-event update time: flows between hosts in the
/// SAME rack (one-switch routes) so each event causes exactly one switch
/// update; the setup latency is then the paper's "update time".  Each
/// cell's setup CDF also lands in `report` as `<fw>_n<size>.update_ms`.
double measure_update_time(core::FrameworkKind fw, std::size_t controllers,
                           obs::RunReport& report) {
  net::FabricParams p;
  p.racks_per_pod = 4;
  p.hosts_per_rack = 4;
  auto dep = make_dep(fw, net::build_pod(p), controllers);

  // Same-rack host pairs, distinct matches, spaced arrivals.
  std::vector<workload::Flow> flows;
  const auto hosts = dep->topology().hosts();
  sim::SimTime t = sim::milliseconds(5);
  int made = 0;
  for (std::size_t i = 0; i < hosts.size() && made < 120; ++i) {
    for (std::size_t j = 0; j < hosts.size() && made < 120; ++j) {
      if (i == j) continue;
      const auto& a = dep->topology().node(hosts[i]).placement;
      const auto& b = dep->topology().node(hosts[j]).placement;
      if (a.rack != b.rack) continue;
      workload::Flow f;
      f.arrival = t;
      f.src_host = hosts[i];
      f.dst_host = hosts[j];
      f.size_bytes = 1e4;
      f.reserved_bps = 1e6;
      flows.push_back(f);
      t += sim::milliseconds(40);
      ++made;
    }
  }
  dep->inject(flows);
  dep->run(t + sim::seconds(5));
  const auto setup = dep->setup_cdf();
  report.add_cdf(metric_slug(core::framework_name(fw)) + "_n" + std::to_string(controllers) +
                     ".update_ms",
                 setup);
  return setup.empty() ? 0.0 : setup.mean();
}

}  // namespace

int main() {
  print_header("Fig. 12a", "Network update time vs control-plane size");

  cicero::obs::RunReport report("fig12a_cp_size");
  report.set_meta("events_per_cell", std::int64_t{120});

  const std::vector<std::size_t> sizes = {1, 4, 5, 6, 7, 8, 9, 10};
  std::printf("%-8s %14s %14s %14s %14s\n", "size", "Centralized", "CrashTolerant", "Cicero",
              "CiceroAgg");
  double centralized = 0.0, cicero10 = 0.0;
  for (const std::size_t n : sizes) {
    std::printf("%-8zu", n);
    if (n == 1) {
      centralized = measure_update_time(core::FrameworkKind::kCentralized, 1, report);
      std::printf(" %11.2f ms %14s %14s %14s\n", centralized, "-", "-", "-");
      continue;
    }
    const double crash = measure_update_time(core::FrameworkKind::kCrashTolerant, n, report);
    const double cicero = measure_update_time(core::FrameworkKind::kCicero, n, report);
    const double agg = measure_update_time(core::FrameworkKind::kCiceroAgg, n, report);
    if (n == 10) cicero10 = cicero;
    std::printf(" %14s %11.2f ms %11.2f ms %11.2f ms\n", "-", crash, cicero, agg);
  }
  std::printf("\n# paper shape: monotone growth with n; Cicero > crash tolerant;\n");
  std::printf("#   Cicero@10 / centralized = %.1fx (paper: ~2.5x)\n",
              centralized > 0 ? cicero10 / centralized : 0.0);
  cicero::bench::write_report(report, "fig12a");
  return 0;
}
