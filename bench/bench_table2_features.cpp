// Table 2 — comparison of network-management solutions.
//
// The related-work rows restate the paper's table; the Cicero row is
// derived from this repository's capability registry, each column backed
// by named tests (see EXPERIMENTS.md).
#include <cstdio>

#include "core/framework.hpp"

int main() {
  using namespace cicero::core;

  std::printf("Table 2 — fault-tolerance/consistency comparison\n\n");
  std::printf("%-28s %6s %6s %6s %6s %6s %6s  %s\n", "System", "Crash", "Byz", "CtrlAu",
              "DynMem", "Consis", "Domain", "Implementation");
  std::printf("%.120s\n",
              "-----------------------------------------------------------------------------"
              "-------------------------------------------");
  for (const auto& row : table2_rows()) {
    auto mark = [](bool b) { return b ? "  x  " : "     "; };
    std::printf("%-28s %6s %6s %6s %6s %6s %6s  %s\n", row.system.c_str(),
                mark(row.crash_tolerant), mark(row.byzantine_tolerant),
                mark(row.controller_authentication), mark(row.dynamic_membership),
                mark(row.update_consistent), mark(row.update_domains),
                row.implementation.c_str());
  }
  std::printf("\n# Cicero column evidence (test names):\n");
  std::printf("#   Crash     -> Pbft.CrashedPrimaryTriggersViewChange, Byzantine.SilentController*\n");
  std::printf("#   Byz       -> Pbft.EquivocatingPrimarySafeAndLive, Byzantine.Mutating*\n");
  std::printf("#   CtrlAuth  -> Byzantine.RogueUpdateRejectedByCiceroSwitch\n");
  std::printf("#   DynMem    -> Membership.* (add/remove with fixed group public key)\n");
  std::printf("#   Consis    -> Fig1/Fig2/Fig3 property suites, Deployment.ReverseInstallOrderObserved\n");
  std::printf("#   Domains   -> MultiDomain.* (isolation + cross-domain forwarding)\n");
  return 0;
}
