// Scale — the update pipeline on thousand-switch topologies.
//
// Two measurements, one report (`cicero-run-report/v1`):
//
//  1. Structure microbenchmarks: the indexed 4-ary heap (sim::Simulator)
//     vs the pre-PR std::priority_queue on the controller's ack-timer
//     pattern (arm a retransmit timer, cancel it when the ack lands —
//     the legacy queue cannot cancel, so every orphaned timer is popped
//     as a deferred no-op), and the dense sched::DependencyTracker vs
//     the pre-PR std::map/std::set tracker on identical dependency
//     batches.  Reported as events/sec, updates/sec and a speedup
//     factor; EXPERIMENTS.md quotes these numbers.
//
//  2. End-to-end scale runs: full deployments on workload::fat_tree(k)
//     and workload::wan(n), reporting simulated events/sec, applied
//     updates/sec, and peak RSS vs switch count.  Configs run smallest
//     first, so the VmHWM reading after each run approximates that
//     config's footprint (RSS high-water is monotonic per process).
//
// `--smoke` trims the sweep to the two CI acceptance topologies —
// k = 16 fat-tree (320 switches / 1024 hosts) and a 1000-switch WAN —
// with a reduced flow count, sized to finish in a CI smoke job.
//
// `--threads N` runs the deployments on the sharded parallel engine
// (N worker shards over domain-partitioned topologies).  Passing the
// flag — even `--threads 1` — switches the topologies to one control
// domain per pod/region so thread counts compare like-for-like;
// without it the single-domain baseline topologies are unchanged.
//
// `--large` appends the 10k-switch WAN and k = 32 fat-tree scenarios
// (out of CI budget; for dedicated scaling runs).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "legacy_structures.hpp"
#include "sched/depgraph.hpp"
#include "sim/simulator.hpp"
#include "workload/topo_gen.hpp"

namespace {

using namespace cicero;

double now_sec() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// Peak resident set size of this process in MiB (VmHWM; monotonic).
double peak_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double mb = 0.0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    long kb = 0;
    if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) {
      mb = static_cast<double>(kb) / 1024.0;
      break;
    }
  }
  std::fclose(f);
  return mb;
}

// --- 1a. event queue: the ack-timer pattern ------------------------------
//
// Per update: an ack arrives ack_gap after send, and a retransmit timer is
// armed ack_timeout out.  The new simulator cancels the timer when the ack
// fires; the legacy queue lets it sit in the heap (growing it to
// ack_timeout/ack_gap entries) and pops it later as a no-op.  `n` useful
// (ack) events are processed either way, so events/sec = n / wall.

struct QueueBenchResult {
  double events_per_sec = 0.0;
  std::uint64_t raw_events = 0;  ///< includes legacy no-op pops
};

QueueBenchResult bench_new_queue(std::uint64_t n, sim::SimTime ack_gap, sim::SimTime timeout) {
  sim::Simulator sim;
  std::uint64_t acked = 0;
  const double t0 = now_sec();
  std::function<void(std::uint64_t)> send = [&](std::uint64_t i) {
    if (i >= n) return;
    const sim::Simulator::TimerId timer = sim.after_cancellable(timeout, [] {});
    sim.after(ack_gap, [&, timer, i] {
      sim.cancel(timer);
      ++acked;
      send(i + 1);
    });
  };
  send(0);
  sim.run();
  const double wall = now_sec() - t0;
  return {static_cast<double>(acked) / wall, sim.events_processed()};
}

QueueBenchResult bench_legacy_queue(std::uint64_t n, sim::SimTime ack_gap, sim::SimTime timeout) {
  bench::LegacyEventQueue sim;
  std::uint64_t acked = 0;
  const double t0 = now_sec();
  std::function<void(std::uint64_t)> send = [&](std::uint64_t i) {
    if (i >= n) return;
    sim.after(timeout, [] {});  // orphaned retransmit timer: pops as a no-op
    sim.after(ack_gap, [&, i] {
      ++acked;
      send(i + 1);
    });
  };
  send(0);
  sim.run();
  const double wall = now_sec() - t0;
  return {static_cast<double>(acked) / wall, sim.events_processed()};
}

// --- 1b. dependency tracker: chained batches -----------------------------
//
// Batches of `width` independent chains of length `depth` (the reverse-path
// scheduler's shape: one chain per flow path), added then completed in
// order.  updates/sec counts add+complete work per update.

template <typename Tracker>
double bench_tracker(std::uint64_t batches, std::uint32_t width, std::uint32_t depth) {
  Tracker tracker;
  sched::UpdateId next_id = 1;
  std::uint64_t updates = 0;
  const double t0 = now_sec();
  std::vector<sched::UpdateId> order;
  for (std::uint64_t b = 0; b < batches; ++b) {
    sched::UpdateSchedule schedule;
    order.clear();
    for (std::uint32_t w = 0; w < width; ++w) {
      sched::UpdateId prev = 0;
      for (std::uint32_t d = 0; d < depth; ++d) {
        sched::ScheduledUpdate su;
        su.update.id = next_id++;
        su.update.switch_node = w * depth + d;
        if (d > 0) su.deps.push_back(prev);
        prev = su.update.id;
        order.push_back(prev);
        schedule.updates.push_back(std::move(su));
      }
    }
    updates += schedule.updates.size();
    std::vector<sched::UpdateId> released = tracker.add(schedule);
    for (const sched::UpdateId id : order) {
      std::vector<sched::UpdateId> more = tracker.complete(id);
      released.insert(released.end(), more.begin(), more.end());
    }
    if (tracker.in_flight() != 0 || tracker.blocked() != 0) {
      std::fprintf(stderr, "tracker bench: leak detected\n");
      std::exit(1);
    }
  }
  const double wall = now_sec() - t0;
  return static_cast<double>(updates) / wall;
}

// --- 2. end-to-end deployments -------------------------------------------

struct ScaleConfig {
  std::string name;
  net::Topology topo;
  std::size_t flows;
};

void run_scale_config(obs::RunReport& report, ScaleConfig cfg, std::uint32_t threads) {
  const std::size_t switches = cfg.topo.switches().size();
  const std::size_t hosts = cfg.topo.hosts().size();
  const std::vector<workload::Flow> flows =
      workload::scale_flows(cfg.topo, cfg.flows, 600.0, /*seed=*/11);

  const double t0 = now_sec();
  auto dep = bench::make_dep(core::FrameworkKind::kCicero, std::move(cfg.topo),
                             /*controllers=*/4, /*teardown=*/false, threads);
  dep->inject(flows);
  dep->run(sim::from_sec(static_cast<double>(cfg.flows) / 600.0 + 20.0));
  const double wall = now_sec() - t0;

  std::uint64_t applied = 0;
  for (const net::NodeIndex s : dep->topology().switches()) {
    applied += dep->switch_at(s).updates_applied();
  }
  const std::uint64_t events = dep->events_processed();
  const std::uint32_t shards = dep->worker_shards();
  const double rss = peak_rss_mb();

  const std::string prefix = "scale." + cfg.name + ".";
  report.set_meta(cfg.name + "_switches", static_cast<std::int64_t>(switches));
  report.add_metrics(dep->obs().metrics, prefix);
  report.add_critical_path("scale." + cfg.name, dep->obs().critpath.summarize());
  report.add_shards("scale." + cfg.name, dep->shard_telemetry());
  obs::crypto_ops().reset();
  obs::MetricsRegistry gauges;
  gauges.gauge(prefix + "switches").set(static_cast<double>(switches));
  gauges.gauge(prefix + "hosts").set(static_cast<double>(hosts));
  gauges.gauge(prefix + "threads").set(static_cast<double>(shards));
  gauges.gauge(prefix + "wall_sec").set(wall);
  gauges.gauge(prefix + "events_per_sec").set(static_cast<double>(events) / wall);
  gauges.gauge(prefix + "updates_per_sec").set(static_cast<double>(applied) / wall);
  gauges.gauge(prefix + "peak_rss_mb").set(rss);
  gauges.counter(prefix + "trace.dropped_events").inc(dep->obs().trace.dropped_events());
  report.add_metrics(gauges);

  std::printf(
      "  %-14s %5zu sw %5zu hosts %2u thr : %8.2fs wall  %10.0f ev/s  %8.0f upd/s  %7.1f MB\n",
      cfg.name.c_str(), switches, hosts, shards, wall, static_cast<double>(events) / wall,
      static_cast<double>(applied) / wall, rss);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool large = false;
  std::uint32_t threads = 1;
  bool domains = false;  // --threads given: use domain-partitioned topologies
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--large") == 0) large = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
      if (threads == 0) threads = 1;
      domains = true;
    }
  }

  cicero::bench::print_header(
      "scale", smoke ? "thousand-switch pipeline (CI smoke)" : "thousand-switch pipeline");
  cicero::obs::RunReport report("scale");
  report.set_meta("mode", smoke ? "smoke" : "full");
  report.set_meta("threads", static_cast<std::int64_t>(threads));

  cicero::workload::FatTreeOptions ft;
  ft.domain_per_pod = domains;
  cicero::workload::WanOptions wo;
  wo.domain_per_region = domains;

  // End-to-end deployments first, smallest first: VmHWM is monotonic per
  // process, so running these before the (memory-hungrier) structure
  // microbenchmarks keeps each config's peak-RSS reading meaningful.
  std::printf("end-to-end scale runs:\n");
  std::vector<ScaleConfig> configs;
  if (!smoke) {
    configs.push_back({"fat_tree_k8", cicero::workload::fat_tree(8, ft), 400});
    configs.push_back({"wan_250", cicero::workload::wan(250, wo), 300});
  }
  configs.push_back({"fat_tree_k16", cicero::workload::fat_tree(16, ft), smoke ? 120u : 600u});
  configs.push_back({"wan_1000", cicero::workload::wan(1000, wo), smoke ? 80u : 400u});
  if (large) {
    configs.push_back({"fat_tree_k32", cicero::workload::fat_tree(32, ft), 800});
    configs.push_back({"wan_10000", cicero::workload::wan(10000, wo), 600});
  }
  for (auto& cfg : configs) run_scale_config(report, std::move(cfg), threads);

  // 1a. Event queue.  500k outstanding timers at steady state (500 ms
  // timeout / 1 us ack gap) — the backlog the retransmission machinery
  // creates when a 1000-switch deployment dispatches ~1M updates/sec.
  const std::uint64_t n_events = smoke ? 600'000 : 2'000'000;
  const cicero::sim::SimTime gap = cicero::sim::microseconds(1);
  const cicero::sim::SimTime timeout = cicero::sim::milliseconds(500);
  const QueueBenchResult fresh = bench_new_queue(n_events, gap, timeout);
  const QueueBenchResult legacy = bench_legacy_queue(n_events, gap, timeout);
  const double queue_speedup = fresh.events_per_sec / legacy.events_per_sec;
  std::printf("\nstructure microbenchmarks (vs pre-PR implementations):\n");
  std::printf("event queue   : %12.0f ev/s indexed-heap  %12.0f ev/s legacy  (%.1fx)\n",
              fresh.events_per_sec, legacy.events_per_sec, queue_speedup);

  // 1b. Dependency tracker.  Reverse-path-shaped chains.
  const std::uint64_t batches = smoke ? 2'000 : 10'000;
  const double fresh_upd = bench_tracker<cicero::sched::DependencyTracker>(batches, 8, 6);
  const double legacy_upd = bench_tracker<cicero::bench::LegacyDependencyTracker>(batches, 8, 6);
  const double tracker_speedup = fresh_upd / legacy_upd;
  std::printf("dep tracker   : %12.0f upd/s dense        %12.0f upd/s legacy  (%.1fx)\n",
              fresh_upd, legacy_upd, tracker_speedup);

  {
    cicero::obs::MetricsRegistry micro;
    micro.gauge("micro.queue.events_per_sec").set(fresh.events_per_sec);
    micro.gauge("micro.queue.legacy_events_per_sec").set(legacy.events_per_sec);
    micro.gauge("micro.queue.speedup").set(queue_speedup);
    micro.gauge("micro.tracker.updates_per_sec").set(fresh_upd);
    micro.gauge("micro.tracker.legacy_updates_per_sec").set(legacy_upd);
    micro.gauge("micro.tracker.speedup").set(tracker_speedup);
    report.add_metrics(micro);
  }

  cicero::bench::write_report(report, "scale");
  if (queue_speedup < 1.0 || tracker_speedup < 1.0) {
    std::fprintf(stderr, "scale bench: regression vs legacy structures\n");
    return 1;
  }
  return 0;
}
