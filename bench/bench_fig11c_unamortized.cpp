// Fig. 11c — Hadoop flow completion CDF with unamortized setup/teardown:
// every flow installs its route before starting and removes it on
// completion, so no rule is ever reused.
//
// Paper anchors: flows last ≈33.6 ms on average; Cicero adds 16 % overhead
// with switch aggregation and 29 % with controller aggregation over the
// centralized baseline.
#include "bench_common.hpp"

int main() {
  using namespace cicero;
  using namespace cicero::bench;

  print_header("Fig. 11c", "Hadoop completion CDF, unamortized setup/teardown");
  // Arrival rate kept below the aggregator's saturation point: controller
  // aggregation funnels every update through ONE controller's CPU, which
  // saturates near ~150 events/s in this configuration — a concrete
  // instance of the paper's §3.3 aggregation trade-off (and the reason
  // the paper's aggregator latency grows with load).

  obs::RunReport report("fig11c_unamortized");
  report.set_meta("workload", "hadoop");
  report.set_meta("flows", static_cast<std::int64_t>(kBenchFlows));
  report.set_meta("teardown_after_flow", std::int64_t{1});
  obs::crypto_ops().reset();

  std::printf("%-16s %10s %12s %12s\n", "framework", "flows", "compl_ms", "overhead%%");
  double centralized_mean = 0.0;
  std::vector<std::pair<std::string, util::CdfCollector>> series;
  std::vector<double> means;
  for (const auto fw :
       {core::FrameworkKind::kCentralized, core::FrameworkKind::kCrashTolerant,
        core::FrameworkKind::kCicero, core::FrameworkKind::kCiceroAgg}) {
    auto dep = make_dep(fw, net::build_pod(bench_pod()), 4, /*teardown=*/true);
    run_workload(*dep, workload::WorkloadKind::kHadoop, kBenchFlows, 7, 80.0);
    const auto completion = dep->completion_cdf();
    if (fw == core::FrameworkKind::kCentralized) centralized_mean = completion.mean();
    const double overhead =
        centralized_mean > 0 ? (completion.mean() / centralized_mean - 1.0) * 100.0 : 0.0;
    std::printf("%-16s %10zu %12.2f %11.1f%%\n", core::framework_name(fw),
                completion.count(), completion.mean(), overhead);
    series.emplace_back(core::framework_name(fw), completion);
    means.push_back(completion.mean());
    report_run(report, *dep, core::framework_name(fw));
  }
  std::printf("\n");
  for (const auto& [name, cdf] : series) print_cdf_series(name, cdf);

  std::printf("\n# paper-vs-measured:\n");
  std::printf("#   centralized mean flow time: paper ~33.6 ms, measured %.1f ms\n", means[0]);
  std::printf("#   Cicero overhead:     paper ~16%%, measured %.1f%%\n",
              (means[2] / means[0] - 1.0) * 100.0);
  std::printf("#   Cicero Agg overhead: paper ~29%%, measured %.1f%%\n",
              (means[3] / means[0] - 1.0) * 100.0);
  write_report(report, "fig11c");
  return 0;
}
