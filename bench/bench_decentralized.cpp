// Decentralized (ez-Segway mode) vs controller-driven execution on the
// fig-style single-pod Hadoop scenario: same Cicero framework, same
// workload and seed, only the execution mode differs.
//
// The headline metrics — gated by bench_diff.py against the committed
// baseline — are the controller's message volume per applied update
// (updates/manifests out + acks in, summed over the control plane) and
// the controller-side ack round trip (ctrl.update_ack_ms: per update
// when controller-driven, per chain sink when decentralized).  The
// decentralized mode must hold a measurably lower messages-per-update
// figure: one manifest per segment plus a single sink ack per chain,
// versus one update plus one multicast ack per segment.
#include "bench_common.hpp"

int main() {
  using namespace cicero;
  using namespace cicero::bench;

  print_header("Decentralized execution",
               "controller-driven vs in-band (ez-Segway) chain execution");

  obs::RunReport report("decentralized");
  report.set_meta("workload", "hadoop");
  report.set_meta("flows", static_cast<std::int64_t>(kBenchFlows));
  report.set_meta("controllers_per_domain", std::int64_t{4});
  obs::crypto_ops().reset();

  std::printf("%-18s %10s %12s %12s %14s %12s\n", "mode", "flows", "compl_ms",
              "setup_ms", "ctrl_msgs/upd", "peer_sigs");
  struct Row {
    std::string name;
    double msgs_per_update = 0.0;
  };
  std::vector<Row> rows;
  for (const auto mode :
       {core::ExecutionMode::kControllerDriven, core::ExecutionMode::kDecentralized}) {
    core::DeploymentParams dp;
    dp.framework = core::FrameworkKind::kCicero;
    dp.execution_mode = mode;
    dp.real_crypto = false;
    dp.seed = 42;
    auto dep = std::make_unique<core::Deployment>(net::build_pod(bench_pod()), dp);
    const double t0 = wall_clock_sec();
    run_workload(*dep, workload::WorkloadKind::kHadoop, kBenchFlows);
    const double wall = wall_clock_sec() - t0;

    std::uint64_t ctrl_msgs = 0;
    for (const auto id : dep->controller_ids()) {
      const auto& c = dep->controller(id);
      ctrl_msgs += c.updates_sent() + c.manifests_sent() + c.acks_received();
    }
    std::uint64_t applied = 0, peer_sigs = 0;
    for (const net::NodeIndex sw : dep->topology().switches()) {
      applied += dep->switch_at(sw).updates_applied();
      peer_sigs += dep->switch_at(sw).peer_signals_sent();
    }
    const std::string name = core::execution_mode_name(mode);
    const double per_update =
        applied == 0 ? 0.0 : static_cast<double>(ctrl_msgs) / static_cast<double>(applied);

    report_run(report, *dep, name, wall);
    obs::MetricsRegistry extra;
    extra.gauge(metric_slug(name) + ".ctrl_msgs_per_update").set(per_update);
    report.add_metrics(extra);

    const auto completion = dep->completion_cdf();
    const auto setup = dep->setup_cdf();
    std::printf("%-18s %10zu %12.2f %12.2f %14.2f %12llu\n", name.c_str(),
                completion.count(), completion.mean(), setup.empty() ? 0.0 : setup.mean(),
                per_update, static_cast<unsigned long long>(peer_sigs));
    rows.push_back(Row{name, per_update});
  }

  std::printf("\n# headline: decentralized must exchange fewer controller\n");
  std::printf("# messages per applied update than controller-driven:\n");
  for (const auto& r : rows) {
    std::printf("#   %-18s %6.2f ctrl msgs/update\n", r.name.c_str(), r.msgs_per_update);
  }
  if (rows.size() == 2 && rows[1].msgs_per_update < rows[0].msgs_per_update) {
    std::printf("# OK: decentralized wins (%.2f < %.2f)\n", rows[1].msgs_per_update,
                rows[0].msgs_per_update);
  } else {
    std::printf("# WARNING: decentralized did not reduce controller messages\n");
  }
  write_report(report, "decentralized");
  return 0;
}
