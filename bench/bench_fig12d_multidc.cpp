// Fig. 12d — web-server flow completion CDF on a multi-data-center fabric
// (Deutsche Telekom-style WAN): one centralized controller for the whole
// network vs Cicero with one domain per pod.
//
// Paper shape: the centralized controller pays WAN latency on flow
// establishment across data centers; Cicero's per-pod domains process
// events locally and in parallel, so Cicero BEATS the centralized
// baseline here despite its extra messaging — the paper's headline
// scalability result.
#include "bench_common.hpp"

namespace {

using namespace cicero;
using namespace cicero::bench;

net::Topology wan_fabric(bool domain_per_pod) {
  net::FabricParams p;
  p.racks_per_pod = 3;
  p.hosts_per_rack = 2;
  p.pods_per_dc = 4;       // paper: 4 pods per data center
  p.data_centers = 3;      // paper: DT topology; scaled
  p.domain_per_pod = domain_per_pod;
  return net::build_multi_dc(p);
}

}  // namespace

int main() {
  print_header("Fig. 12d", "Web-server completion CDF across multiple data centers");

  struct Setup {
    const char* label;
    core::FrameworkKind fw;
    bool md;
    std::size_t controllers;
  };
  const Setup setups[] = {
      {"Centralized", core::FrameworkKind::kCentralized, false, 1},
      {"Cicero MD", core::FrameworkKind::kCicero, true, 4},
      {"Cicero Agg MD", core::FrameworkKind::kCiceroAgg, true, 4},
  };

  obs::RunReport report("fig12d_multidc");
  report.set_meta("workload", "web_server");
  report.set_meta("flows", static_cast<std::int64_t>(kBenchFlows));
  obs::crypto_ops().reset();

  std::printf("%-16s %10s %10s %10s %10s\n", "setup", "flows", "compl_ms", "setup_ms",
              "p99_ms");
  std::vector<std::pair<std::string, util::CdfCollector>> series;
  std::vector<double> means;
  for (const auto& s : setups) {
    auto dep = make_dep(s.fw, wan_fabric(s.md), s.controllers);
    run_workload(*dep, workload::WorkloadKind::kWebServer, kBenchFlows, 7, 300.0);
    const auto completion = dep->completion_cdf();
    const auto setup = dep->setup_cdf();
    std::printf("%-16s %10zu %10.2f %10.2f %10.2f\n", s.label, completion.count(),
                completion.mean(), setup.empty() ? 0.0 : setup.mean(),
                completion.count() ? completion.p99() : 0.0);
    series.emplace_back(s.label, completion);
    means.push_back(completion.mean());
    report_run(report, *dep, s.label);
  }
  std::printf("\n");
  for (const auto& [name, cdf] : series) print_cdf_series(name, cdf);
  std::printf("\n# paper shape: Cicero MD completes flows FASTER than the\n");
  std::printf("# centralized controller on a WAN (crossover vs Fig. 11):\n");
  std::printf("#   centralized mean %.1f ms vs Cicero MD mean %.1f ms (%s)\n", means[0],
              means[1], means[1] < means[0] ? "Cicero wins, as in the paper" : "UNEXPECTED");
  write_report(report, "fig12d");
  return 0;
}
