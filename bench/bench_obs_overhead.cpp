// Observability overhead guard: the metrics/trace hot path must cost
// (almost) nothing when recording is off.
//
// Two properties are ASSERTED (non-zero exit on violation), so this bench
// doubles as a regression gate:
//   1. counter.inc / histogram.observe / tracer record calls against a
//      DISABLED registry/tracer perform ZERO heap allocations;
//   2. the same calls against an ENABLED registry also allocate nothing
//      (all storage is resolved at handle-construction time);
//   3. NetworkSim::multicast copies the payload once per fan-out, not
//      once per destination (allocated bytes stay ~1 payload no matter
//      how many recipients).
// Wall-clock per-op costs are printed for information only (they vary
// with the host and are not asserted).
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace {
std::uint64_t g_allocs = 0;
std::uint64_t g_bytes = 0;
bool g_counting = false;
}  // namespace

void* operator new(std::size_t n) {
  if (g_counting) {
    ++g_allocs;
    g_bytes += n;
  }
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

constexpr std::uint64_t kIters = 5'000'000;

struct Probe {
  std::uint64_t allocs = 0;
  double ns_per_op = 0.0;
};

template <typename Fn>
Probe measure(Fn&& body) {
  using clock = std::chrono::steady_clock;
  g_allocs = 0;
  g_counting = true;
  const auto t0 = clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) body(i);
  const auto t1 = clock::now();
  g_counting = false;
  Probe p;
  p.allocs = g_allocs;
  p.ns_per_op =
      std::chrono::duration<double, std::nano>(t1 - t0).count() / static_cast<double>(kIters);
  return p;
}

int check(const char* label, const Probe& p) {
  std::printf("%-28s %8.2f ns/op   %10llu allocs\n", label, p.ns_per_op,
              static_cast<unsigned long long>(p.allocs));
  if (p.allocs != 0) {
    std::fprintf(stderr, "FAIL: %s allocated on the hot path\n", label);
    return 1;
  }
  return 0;
}

}  // namespace

int main() {
  using namespace cicero;

  std::printf("obs hot-path overhead (%llu iterations per probe)\n",
              static_cast<unsigned long long>(kIters));
#ifdef CICERO_OBS_NOOP
  std::printf("build: CICERO_OBS=OFF (record methods compiled out)\n");
#endif

  int failures = 0;

  {
    obs::MetricsRegistry reg(/*enabled=*/false);
    obs::Counter c = reg.counter("bench.counter");
    obs::Histogram h = reg.histogram("bench.histogram_ms", obs::latency_buckets_ms());
    failures += check("counter.inc (disabled)", measure([&](std::uint64_t) { c.inc(); }));
    failures += check("histogram.observe (disabled)",
                      measure([&](std::uint64_t i) { h.observe(static_cast<double>(i & 1023)); }));
  }

  {
    obs::MetricsRegistry reg(/*enabled=*/true);
    obs::Counter c = reg.counter("bench.counter");
    obs::Histogram h = reg.histogram("bench.histogram_ms", obs::latency_buckets_ms());
    failures += check("counter.inc (enabled)", measure([&](std::uint64_t) { c.inc(); }));
    failures += check("histogram.observe (enabled)",
                      measure([&](std::uint64_t i) { h.observe(static_cast<double>(i & 1023)); }));
  }

  {
    obs::Tracer tracer;  // disabled by default
    std::int64_t t = 0;
    tracer.set_clock([&t] { return t++; });
    failures += check("tracer.complete (disabled)", measure([&](std::uint64_t i) {
                        tracer.complete(1, 0, "span", static_cast<std::int64_t>(i), 10);
                      }));
    failures += check("tracer.instant (disabled)",
                      measure([&](std::uint64_t) { tracer.instant(1, 0, "mark"); }));
    if (tracer.event_count() != 0) {
      std::fprintf(stderr, "FAIL: disabled tracer buffered %zu events\n", tracer.event_count());
      ++failures;
    }
  }

  {
    // Multicast fan-out: the shared-payload send path must allocate the
    // message bytes ONCE per fan-out, not once per destination.  With a
    // 1 MiB payload and 64 recipients, per-destination copying would
    // allocate ~64 MiB; the shared path stays within 2 payloads (one
    // shared copy + per-event bookkeeping, which is KBs, not MBs).
    sim::Simulator sim;
    sim::NetworkSim net(sim);
    constexpr std::size_t kDst = 64;
    constexpr std::size_t kPayload = 1 << 20;
    const sim::NodeId src = net.add_node("src");
    std::vector<sim::NodeId> dst;
    std::uint64_t delivered = 0;
    for (std::size_t i = 0; i < kDst; ++i) {
      const sim::NodeId node = net.add_node("dst" + std::to_string(i));
      net.set_handler(node,
                      [&delivered](sim::NodeId, const util::Bytes&) { ++delivered; });
      dst.push_back(node);
    }
    const util::Bytes payload(kPayload, 0xAB);
    g_allocs = 0;
    g_bytes = 0;
    g_counting = true;
    net.multicast(src, dst, payload);
    sim.run();
    g_counting = false;
    std::printf("%-28s %8.2f MB allocated, %llu allocs (%zu-way 1 MiB fan-out)\n",
                "net.multicast (shared)", static_cast<double>(g_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(g_allocs), kDst);
    if (delivered != kDst) {
      std::fprintf(stderr, "FAIL: multicast delivered %llu of %zu\n",
                   static_cast<unsigned long long>(delivered), kDst);
      ++failures;
    }
    if (g_bytes > 2 * kPayload) {
      std::fprintf(stderr, "FAIL: multicast send path copied the payload per destination\n");
      ++failures;
    }
  }

  if (failures != 0) return 1;
  std::printf("\nPASS: no allocation and no lock on any probed hot path\n");
  return 0;
}
