// Ablation — signature aggregation placement (paper §3.3 trade-off):
// switch aggregation vs controller aggregation, sweeping the quorum size.
//
// Quantifies both sides of the trade: switch CPU (controller aggregation
// should win) and flow-setup latency (switch aggregation should win), as
// the control plane grows.
#include "bench_common.hpp"

int main() {
  using namespace cicero;
  using namespace cicero::bench;

  print_header("Ablation: aggregation placement",
               "setup latency and switch CPU vs control-plane size");

  std::printf("%-6s %-14s %14s %18s\n", "n", "mode", "setup_ms", "switch_cpu_ms");
  for (const std::size_t n : {4u, 7u, 10u}) {
    for (const auto fw : {core::FrameworkKind::kCicero, core::FrameworkKind::kCiceroAgg}) {
      net::FabricParams p;
      p.racks_per_pod = 4;
      p.hosts_per_rack = 2;
      auto dep = make_dep(fw, net::build_pod(p), n);
      run_workload(*dep, workload::WorkloadKind::kHadoop, 400, 7, 200.0);
      const auto setup = dep->setup_cdf();
      double busy = 0.0;
      for (const auto sw : dep->topology().switches()) {
        busy += static_cast<double>(dep->switch_at(sw).cpu().busy_total());
      }
      std::printf("%-6zu %-14s %14.2f %18.1f\n", n,
                  fw == core::FrameworkKind::kCicero ? "switch-agg" : "controller-agg",
                  setup.empty() ? 0.0 : setup.mean(), busy / 1e6);
    }
  }
  std::printf("\n# expected: controller aggregation trades higher setup latency for\n");
  std::printf("# roughly half the switch CPU at every control-plane size (§3.3/§6.2).\n");
  return 0;
}
