// Fig. 12a variant — controller egress bytes and switch CPU vs
// control-plane size, plain kCicero against the in-network aggregation
// offload (P4BFT-style; DESIGN.md §16).
//
// Under plain kCicero every replica sends the target switch a full
// signed update, so controller egress grows linearly with n.  Under
// kInNetwork one rank-0 replica sends the full body to the domain's
// designated aggregator switch, ranks 1..t-1 send compact digest
// shares, and ranks >= t stay silent — the aggregator compares digests,
// combines the threshold partials and fans out ONE aggregated update.
//
// The headline metric — gated by bench_diff.py against the committed
// baseline — is controller-sent bytes per applied update per cell
// (`<mode>_n<size>.ctrl_bytes_per_update`).  The acceptance bar: at
// n=10 the in-network figure must be <= 1/3 of the kCicero baseline.
// Switch CPU (total busy ms) is reported alongside to show the
// offload's cost side: the aggregator switch does the combine work the
// replicas' target-switch fan-out used to amortize.
#include "bench_common.hpp"

namespace {

using namespace cicero;
using namespace cicero::bench;

struct Cell {
  double bytes_per_update = 0.0;
  double switch_cpu_ms = 0.0;
};

Cell measure(core::AggregationMode agg, std::size_t controllers,
             obs::RunReport& report) {
  net::FabricParams p;
  p.racks_per_pod = 4;
  p.hosts_per_rack = 4;
  core::DeploymentParams dp;
  dp.framework = core::FrameworkKind::kCicero;
  dp.aggregation = agg;
  dp.controllers_per_domain = controllers;
  dp.real_crypto = false;
  dp.seed = 42;
  auto dep = std::make_unique<core::Deployment>(net::build_pod(p), dp);

  const double t0 = wall_clock_sec();
  run_workload(*dep, workload::WorkloadKind::kHadoop, 400);
  const double wall = wall_clock_sec() - t0;

  std::uint64_t southbound = 0;
  for (const auto id : dep->controller_ids()) {
    southbound += dep->controller(id).southbound_bytes();
  }
  std::uint64_t applied = 0;
  double cpu_ms = 0.0;
  for (const net::NodeIndex sw : dep->topology().switches()) {
    applied += dep->switch_at(sw).updates_applied();
    cpu_ms += sim::to_sec(dep->switch_at(sw).cpu().busy_total()) * 1e3;
  }

  Cell cell;
  cell.bytes_per_update =
      applied == 0 ? 0.0
                   : static_cast<double>(southbound) / static_cast<double>(applied);
  cell.switch_cpu_ms = cpu_ms;

  const std::string label =
      std::string(agg == core::AggregationMode::kInNetwork ? "innet" : "cicero") +
      "_n" + std::to_string(controllers);
  report_run(report, *dep, label, wall);
  obs::MetricsRegistry extra;
  extra.gauge(label + ".ctrl_bytes_per_update").set(cell.bytes_per_update);
  extra.gauge(label + ".switch_cpu_ms").set(cell.switch_cpu_ms);
  report.add_metrics(extra);
  return cell;
}

}  // namespace

int main() {
  print_header("Fig. 12a variant (in-network aggregation)",
               "controller egress bytes and switch CPU vs control-plane size");

  obs::RunReport report("innet_cp_size");
  report.set_meta("workload", "hadoop");
  report.set_meta("flows_per_cell", std::int64_t{400});

  const std::vector<std::size_t> sizes = {1, 4, 5, 6, 7, 8, 9, 10};
  std::printf("%-6s %16s %16s %14s %14s\n", "size", "cicero B/upd", "innet B/upd",
              "cicero cpu_ms", "innet cpu_ms");
  double base10 = 0.0, innet10 = 0.0;
  for (const std::size_t n : sizes) {
    const Cell base = measure(core::AggregationMode::kNone, n, report);
    const Cell innet = measure(core::AggregationMode::kInNetwork, n, report);
    if (n == 10) {
      base10 = base.bytes_per_update;
      innet10 = innet.bytes_per_update;
    }
    std::printf("%-6zu %16.1f %16.1f %14.1f %14.1f\n", n, base.bytes_per_update,
                innet.bytes_per_update, base.switch_cpu_ms, innet.switch_cpu_ms);
  }

  std::printf("\n# headline: at n=10 the in-network offload must send <= 1/3\n");
  std::printf("# of the kCicero baseline's controller bytes per update:\n");
  std::printf("#   cicero %.1f B/upd, innet %.1f B/upd, ratio %.3f\n", base10, innet10,
              base10 > 0 ? innet10 / base10 : 0.0);
  if (base10 > 0 && innet10 <= base10 / 3.0) {
    std::printf("# OK: acceptance bar met (%.3f <= 0.333)\n", innet10 / base10);
  } else {
    std::printf("# WARNING: acceptance bar MISSED\n");
  }
  write_report(report, "innet");
  return 0;
}
