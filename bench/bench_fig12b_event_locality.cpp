// Fig. 12b — percentage of all events that each control plane must
// process, as the number of domains in one pod grows from 1 to 10.
//
// Paper shape: with one domain every event hits the single control plane
// (100 %); splitting the pod sharply reduces each plane's share, with
// diminishing returns; the web-server workload (31.6 % multi-domain
// events) keeps shares higher than Hadoop (5.8 %).
//
// Like the paper's analysis this is a locality computation over the
// workload's routes: an event is charged to every domain whose switches
// its route touches.
#include "bench_common.hpp"

#include <set>

namespace {

using namespace cicero;
using namespace cicero::bench;

/// Splits the pod's switches into `d` domains: ToR r -> domain r % d,
/// edge switch e -> domain e % d (approximating the paper's intra-pod
/// split).
net::Topology split_pod(std::size_t d) {
  net::Topology topo = net::build_pod(bench_pod());
  std::size_t tor = 0, edge = 0;
  for (const auto sw : topo.switches()) {
    auto& node = topo.node(sw);
    if (node.name.find("tor") != std::string::npos) {
      node.domain = static_cast<net::DomainId>(tor++ % d);
    } else {
      node.domain = static_cast<net::DomainId>(edge++ % d);
    }
  }
  return topo;
}

double mean_share(const net::Topology& topo, workload::WorkloadKind kind, std::size_t d) {
  workload::WorkloadParams wp;
  wp.kind = kind;
  wp.flow_count = 4000;
  wp.seed = 11;
  const auto flows = workload::WorkloadGenerator(topo, wp).generate();

  std::map<net::DomainId, std::size_t> processed;
  for (const auto dom : topo.domains()) processed[dom] = 0;
  for (const auto& f : flows) {
    const auto path = topo.shortest_path(f.src_host, f.dst_host);
    std::set<net::DomainId> touched;
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      touched.insert(topo.node(path[i]).domain);
    }
    for (const auto dom : touched) ++processed[dom];
  }
  double mean = 0.0;
  for (const auto& [dom, count] : processed) {
    mean += static_cast<double>(count) / static_cast<double>(flows.size());
  }
  return mean / static_cast<double>(d) * 100.0;  // mean % per control plane...

}

}  // namespace

int main() {
  print_header("Fig. 12b", "% of events processed per control plane vs #domains in a pod");

  // No deployment runs here (pure locality analysis), so the report
  // carries the share table itself as gauges.
  obs::RunReport report("fig12b_event_locality");
  report.set_meta("flows_per_point", std::int64_t{4000});
  obs::MetricsRegistry shares(true);

  std::printf("%-10s %16s %16s\n", "#domains", "MD Hadoop", "MD Webserver");
  double hadoop1 = 0.0;
  for (std::size_t d = 1; d <= 10; ++d) {
    const net::Topology topo = split_pod(d);
    const double h = mean_share(topo, workload::WorkloadKind::kHadoop, d);
    const double w = mean_share(topo, workload::WorkloadKind::kWebServer, d);
    if (d == 1) hadoop1 = h;
    shares.gauge("hadoop.share_pct.d" + std::to_string(d)).set(h);
    shares.gauge("web_server.share_pct.d" + std::to_string(d)).set(w);
    std::printf("%-10zu %15.1f%% %15.1f%%\n", d, h, w);
  }
  report.add_metrics(shares);
  std::printf("\n# paper shape: 100%% at one domain, steep drop then diminishing\n");
  std::printf("# returns; webserver shares exceed Hadoop at every split\n");
  std::printf("# (single-domain share measured: %.0f%%)\n", hadoop1);
  write_report(report, "fig12b");
  return 0;
}
