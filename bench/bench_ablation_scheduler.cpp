// Ablation — what the update scheduler buys (DESIGN.md design choice:
// pluggable scheduler, reverse-path default).
//
// For a batch of random reroute scenarios on the paper's 5-switch fabric,
// updates are applied in many random orders.  With dependence sets from
// the reverse-path / Dionysus-lite schedulers, transient violations must
// be zero; with the naive scheduler the same scenarios produce loops,
// black holes and congestion at intermediate steps — quantifying Table 1.
#include <cstdio>
#include <map>
#include <set>

#include "net/checker.hpp"
#include "sched/depgraph.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace cicero;

struct Fabric {
  net::Topology topo;
  std::vector<net::NodeIndex> switches, hosts;
  std::map<net::NodeIndex, net::FlowTable> tables;

  Fabric() {
    // 6 switches in a 2x3 grid + 4 hosts.
    for (int i = 0; i < 6; ++i) {
      switches.push_back(topo.add_switch("s" + std::to_string(i), {}, 0));
    }
    const double bw = 10e6;
    auto link = [&](int a, int b) {
      topo.add_link(switches[static_cast<std::size_t>(a)],
                    switches[static_cast<std::size_t>(b)], bw, sim::microseconds(10));
    };
    link(0, 1);
    link(1, 2);
    link(3, 4);
    link(4, 5);
    link(0, 3);
    link(1, 4);
    link(2, 5);
    for (int i = 0; i < 4; ++i) {
      const auto h = topo.add_host("h" + std::to_string(i), {}, 0);
      hosts.push_back(h);
      topo.add_link(h, switches[static_cast<std::size_t>(i == 3 ? 5 : i)], 10 * bw,
                    sim::microseconds(5));
    }
  }

  net::TableMap table_map() const {
    net::TableMap m;
    for (const auto& [sw, t] : tables) m[sw] = &t;
    return m;
  }
  void apply(const sched::Update& u) {
    if (u.op == sched::UpdateOp::kInstall) {
      tables[u.switch_node].install(u.rule);
    } else {
      tables[u.switch_node].remove(u.rule.match);
    }
  }
};

/// Runs one random reroute scenario under the given scheduler; returns
/// the number of intermediate states with a violation.
int run_scenario(const sched::UpdateScheduler& scheduler, std::uint64_t seed) {
  Fabric f;
  util::Rng rng(seed);
  const net::NodeIndex src = f.hosts[rng.next_below(f.hosts.size())];
  net::NodeIndex dst = src;
  while (dst == src) dst = f.hosts[rng.next_below(f.hosts.size())];
  const net::FlowMatch m{src, dst};

  // Establish the shortest route first (consistently).
  const auto path1 = f.topo.shortest_path(src, dst);
  if (path1.size() < 3) return 0;
  sched::RouteIntent establish;
  establish.kind = sched::RouteIntent::Kind::kEstablish;
  establish.match = m;
  establish.path = path1;
  establish.reserved_bps = 4e6;
  for (const auto& su : sched::ReversePathScheduler().build(establish, 1).updates) {
    f.apply(su.update);
  }

  // Reroute through a random intermediate switch (a detour), applying in a
  // random dependence-respecting order, counting violating states.
  const net::NodeIndex via = f.switches[rng.next_below(f.switches.size())];
  const auto a = f.topo.shortest_path(f.topo.host_tor(src), via);
  const auto b = f.topo.shortest_path(via, f.topo.host_tor(dst));
  if (a.empty() || b.empty()) return 0;
  std::vector<net::NodeIndex> detour;
  detour.push_back(src);
  for (const auto n : a) detour.push_back(n);
  for (std::size_t i = 1; i < b.size(); ++i) detour.push_back(b[i]);
  detour.push_back(dst);
  // Skip degenerate detours with repeated switches (not simple paths).
  std::set<net::NodeIndex> uniq(detour.begin(), detour.end());
  if (uniq.size() != detour.size()) return 0;

  sched::RouteIntent reroute;
  reroute.kind = sched::RouteIntent::Kind::kEstablish;
  reroute.match = m;
  reroute.path = detour;
  reroute.reserved_bps = 4e6;
  const auto schedule = scheduler.build(reroute, 100);

  int violations = 0;
  sched::DependencyTracker tracker;
  std::vector<sched::UpdateId> ready = tracker.add(schedule);
  while (!ready.empty()) {
    const std::size_t pick = static_cast<std::size_t>(rng.next_below(ready.size()));
    const sched::UpdateId id = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
    f.apply(tracker.update(id));
    const auto trace = net::trace_flow(f.topo, f.table_map(), src, dst);
    if (trace.status == net::TraceStatus::kLoop ||
        trace.status == net::TraceStatus::kBlackHole) {
      ++violations;
    }
    for (const auto next : tracker.complete(id)) ready.push_back(next);
  }
  return violations;
}

}  // namespace

int main() {
  std::printf("Ablation: update scheduler (transient violations over 400 random reroutes)\n\n");
  const sched::ReversePathScheduler reverse;
  const sched::DionysusLiteScheduler dionysus;
  const sched::NaiveScheduler naive;
  struct Row {
    const char* name;
    const sched::UpdateScheduler* s;
  };
  for (const Row row : {Row{"reverse-path", &reverse}, Row{"dionysus-lite", &dionysus},
                        Row{"naive (no deps)", &naive}}) {
    int violating_states = 0, violating_scenarios = 0;
    for (std::uint64_t seed = 0; seed < 400; ++seed) {
      const int v = run_scenario(*row.s, seed);
      violating_states += v;
      violating_scenarios += (v > 0);
    }
    std::printf("%-18s violating intermediate states: %4d   scenarios affected: %3d/400\n",
                row.name, violating_states, violating_scenarios);
  }
  std::printf("\n# expected: zero transient violations for the dependence-based\n");
  std::printf("# schedulers; the naive scheduler reproduces the Fig. 1-3 bugs.\n");
  return 0;
}
